"""Coordinator side of the pool: registry, shard assignment, failover.

The coordinator is the process that owns :class:`~repro.service.state
.ClusterState` and the coalescing queue (i.e. the
:class:`~repro.service.daemon.AllocationService`); this module gives it a
:class:`WorkerPool` whose :meth:`WorkerPool.solve_shards` is a drop-in for
:func:`repro.core.sharding.solve_shards` — same inputs, same
:class:`~repro.core.sharding.ShardResult` outputs, bit-identical matrices —
except the solves happen in remote worker processes over the wire protocol.

Three cooperating pieces:

* :class:`WorkerClient` — one worker's connections.  A *solve* connection
  carries RPCs (serialized per worker: a worker is one process solving one
  shard at a time anyway) and a separate *control* connection carries
  heartbeats, so a long solve never starves liveness probes.
* :class:`ShardAssignment` — the shard→worker map.  Sticky: a shard keeps
  its owner (whose :class:`~repro.core.sharding.ShardBasisPool` holds the
  warm cuts) while that owner lives; new keys go to the least-loaded live
  worker (ties by worker id, so assignment is deterministic).
* :class:`WorkerPool` — fans a solve batch out per owner (one thread per
  worker), detects failures fast (an RPC fault marks the worker dead
  immediately; the :class:`~repro.dist.membership.HeartbeatMonitor`
  catches silent deaths between solves), reassigns the dead worker's
  shards to survivors and *re-warms* them: the pool mirrors every cut a
  worker reports back, and the first solve of a reassigned shard ships the
  mirrored cuts as ``seed_cuts`` so the new owner starts warm instead of
  cold — the service-level analogue of the PR 1 failure machinery.

If every worker is dead a solve raises :class:`DistError`; the
:class:`~repro.core.policies.ResilientPolicy` chain above the solver then
degrades to the local cold path, so the public API keeps answering.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro._util import require
from repro.core.amf import AmfDiagnostics
from repro.core.sharding import Shard, ShardBasisPool, ShardResult, merge_diagnostics
from repro.dist.membership import HeartbeatMonitor, WorkerInfo
from repro.dist.protocol import (
    ErrorReply,
    Hello,
    HelloAck,
    Message,
    Ping,
    Pong,
    ProtocolError,
    ShardSolved,
    Shutdown,
    SolveShard,
    recv_message,
    send_message,
)
from repro.model.serialize import cluster_to_dict
from repro.obs.instruments import (
    record_dist_failover,
    record_dist_rpc,
    set_dist_workers_alive,
)

__all__ = ["DistError", "DistStats", "WorkerClient", "ShardAssignment", "WorkerPool"]


class DistError(RuntimeError):
    """The pool cannot serve a solve (no live workers / worker fault)."""


@dataclass(slots=True)
class DistStats:
    """Coordinator-side counters (surfaced in ``/v1/stats`` under ``dist``)."""

    rpcs: int = 0
    rpc_errors: int = 0
    solve_retries: int = 0  # shard solves replayed on a survivor
    failovers: int = 0  # workers declared dead
    reassignments: int = 0  # shard keys moved off a dead worker
    heartbeat_misses: int = 0
    rpc_seconds: float = 0.0  # cumulative round-trip time
    errors: list[str] = field(default_factory=list)  # bounded failure log
    # Oracle counters merged from every ShardSolved reply, so the dist
    # section of ``/v1/stats`` reports the same probes_*/reuse breakdown
    # the local backend does instead of dropping it at the wire.
    probes: AmfDiagnostics = field(default_factory=AmfDiagnostics)

    MAX_ERRORS = 20

    def log_error(self, message: str) -> None:
        if len(self.errors) < self.MAX_ERRORS:
            self.errors.append(message)

    def to_dict(self) -> dict:
        return {
            "rpcs": self.rpcs,
            "rpc_errors": self.rpc_errors,
            "solve_retries": self.solve_retries,
            "failovers": self.failovers,
            "reassignments": self.reassignments,
            "heartbeat_misses": self.heartbeat_misses,
            "rpc_seconds": self.rpc_seconds,
            "errors": list(self.errors[-5:]),
            "probes": {**asdict(self.probes), "probes_reused": self.probes.probes_reused},
        }


class WorkerClient:
    """RPC client for one worker: a solve connection plus a control one.

    Thread-safe: each connection has its own lock, so a heartbeat on the
    control connection proceeds while a solve RPC is in flight.  Any
    connection/protocol fault closes both sockets and marks the client
    unusable — the pool treats that as worker death.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        connect_timeout: float = 5.0,
        rpc_timeout: float = 120.0,
        ping_timeout: float = 2.0,
    ):
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout = connect_timeout
        self.rpc_timeout = rpc_timeout
        self.ping_timeout = ping_timeout
        self.worker_id: str = f"{self.address[0]}:{self.address[1]}"
        self._solve_sock: socket.socket | None = None
        self._control_sock: socket.socket | None = None
        self._solve_lock = threading.Lock()
        self._control_lock = threading.Lock()
        self._ids = iter(range(1, 1 << 62))
        self._id_lock = threading.Lock()

    def _next_id(self) -> int:
        with self._id_lock:
            return next(self._ids)

    def _dial(self, timeout: float) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        sock.settimeout(timeout)
        return sock

    def connect(self) -> HelloAck:
        """Open both connections and handshake; returns the worker's hello."""
        self._solve_sock = self._dial(self.rpc_timeout)
        self._control_sock = self._dial(self.ping_timeout)
        reply = self._roundtrip(self._control_sock, Hello(id=self._next_id(), peer="coordinator"))
        if not isinstance(reply, HelloAck):
            raise ProtocolError(f"expected hello_ack, got {reply.TYPE!r}")
        self.worker_id = reply.worker_id or self.worker_id
        return reply

    def _roundtrip(self, sock: socket.socket | None, msg: Message) -> Message:
        if sock is None:
            raise DistError(f"worker {self.worker_id}: not connected")
        send_message(sock, msg)
        while True:
            reply = recv_message(sock)
            if reply.id == msg.id:
                return reply
            if isinstance(reply, ErrorReply) and reply.id == 0:
                # A stream-level refusal (version_mismatch, frame_too_large,
                # unparseable envelope): the worker answers once with id=0
                # and hangs up.  Surface it typed instead of spinning until
                # the RPC timeout — retrying elsewhere would refuse
                # identically, so the pool must fail closed.
                raise DistError(
                    f"worker {self.worker_id} refused the stream: [{reply.code}] {reply.message}"
                )
            # A stale reply (e.g. the answer to an RPC we gave up on)
            # is skipped, never misattributed.

    def ping(self) -> Pong:
        with self._control_lock:
            reply = self._roundtrip(self._control_sock, Ping(id=self._next_id()))
        if isinstance(reply, Pong):
            return reply
        raise ProtocolError(f"expected pong, got {reply.TYPE!r}")

    def solve(self, request: SolveShard) -> ShardSolved:
        """One solve RPC (errors from the worker surface as DistError)."""
        msg = SolveShard(
            id=self._next_id(),
            key=request.key,
            cluster=request.cluster,
            oracle=request.oracle,
            seed_cuts=request.seed_cuts,
            floors=request.floors,
            resource_totals=request.resource_totals,
        )
        with self._solve_lock:
            reply = self._roundtrip(self._solve_sock, msg)
        if isinstance(reply, ShardSolved):
            return reply
        if isinstance(reply, ErrorReply):
            raise DistError(f"worker {self.worker_id} refused solve: [{reply.code}] {reply.message}")
        raise ProtocolError(f"expected shard_solved, got {reply.TYPE!r}")

    def shutdown(self) -> None:
        """Best-effort graceful stop request."""
        try:
            with self._solve_lock:
                self._roundtrip(self._solve_sock, Shutdown(id=self._next_id()))
        except (OSError, ProtocolError, DistError):
            pass

    def close(self) -> None:
        for sock in (self._solve_sock, self._control_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
        self._solve_sock = self._control_sock = None


class ShardAssignment:
    """Sticky shard→worker map with deterministic least-loaded placement."""

    def __init__(self):
        self._owner: dict[frozenset[str], str] = {}

    def __len__(self) -> int:
        return len(self._owner)

    def owner_of(self, key: frozenset[str]) -> str | None:
        return self._owner.get(key)

    def shards_of(self, worker_id: str) -> list[frozenset[str]]:
        return [k for k, w in self._owner.items() if w == worker_id]

    def assign(self, key: frozenset[str], live: list[str]) -> str:
        """Current owner if alive, else the least-loaded live worker
        (ties broken by worker id, so placement is deterministic)."""
        require(bool(live), "cannot assign a shard with no live workers")
        owner = self._owner.get(key)
        if owner in live:
            return owner
        loads = {w: 0 for w in live}
        for w in self._owner.values():
            if w in loads:
                loads[w] += 1
        pick = min(sorted(loads), key=loads.__getitem__)
        self._owner[key] = pick
        return pick

    def drop_worker(self, worker_id: str) -> list[frozenset[str]]:
        """Forget a dead worker's ownerships; returns the orphaned keys."""
        orphaned = self.shards_of(worker_id)
        for key in orphaned:
            del self._owner[key]
        return orphaned

    def to_dict(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for key, worker in self._owner.items():
            out.setdefault(worker, []).append("+".join(sorted(key)))
        return {w: sorted(keys) for w, keys in sorted(out.items())}


class WorkerPool:
    """The coordinator's solver pool: N workers, one assignment map.

    Parameters
    ----------
    addresses:
        ``(host, port)`` pairs of the workers to connect to.
    oracle:
        Feasibility backend named in every solve RPC.
    max_cuts:
        Bound on the coordinator's *mirror* basis pool (used to re-warm
        reassigned shards after a failover).
    rpc_timeout / connect_timeout:
        Socket budgets for solve RPCs and dials.
    heartbeat_interval / miss_threshold / ping_timeout:
        Membership knobs (see :class:`HeartbeatMonitor`).
    """

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        *,
        oracle: str = "parametric",
        max_cuts: int = 64,
        rpc_timeout: float = 120.0,
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 3,
        ping_timeout: float = 2.0,
    ):
        require(len(addresses) >= 1, "worker pool needs at least one address")
        self.oracle = oracle
        self.assignment = ShardAssignment()
        self.mirror = ShardBasisPool(max_cuts=max_cuts)
        self.stats = DistStats()
        self._clients: dict[str, WorkerClient] = {}
        self._info: dict[str, WorkerInfo] = {}
        self._reseed: set[frozenset[str]] = set()  # keys needing a seeded first solve
        self._lock = threading.RLock()
        self._started = False
        self._addresses = [(str(h), int(p)) for h, p in addresses]
        self._client_opts = dict(
            connect_timeout=connect_timeout, rpc_timeout=rpc_timeout, ping_timeout=ping_timeout
        )
        self.monitor = HeartbeatMonitor(
            self._heartbeat_targets,
            self._on_heartbeat_dead,
            on_alive=self._on_heartbeat_alive,
            on_miss=self._on_heartbeat_miss,
            interval=heartbeat_interval,
            miss_threshold=miss_threshold,
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerPool":
        """Connect to every worker (all must answer) and start heartbeats."""
        with self._lock:
            require(not self._started, "pool already started")
            for address in self._addresses:
                client = WorkerClient(address, **self._client_opts)
                hello = client.connect()
                require(
                    hello.worker_id not in self._clients,
                    f"duplicate worker id {hello.worker_id!r} at {address}",
                )
                self._clients[hello.worker_id] = client
                self._info[hello.worker_id] = WorkerInfo(
                    worker_id=hello.worker_id, address=client.address, solves=hello.solves
                )
            self._started = True
        set_dist_workers_alive(len(self.live_workers))
        self.monitor.start()
        return self

    def stop(self, *, shutdown_workers: bool = False) -> None:
        self.monitor.stop()
        with self._lock:
            for client in self._clients.values():
                if shutdown_workers:
                    client.shutdown()
                client.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- membership ----------------------------------------------------
    @property
    def live_workers(self) -> list[str]:
        with self._lock:
            return sorted(w for w, info in self._info.items() if info.alive)

    @property
    def workers(self) -> dict[str, WorkerInfo]:
        with self._lock:
            for worker_id, info in self._info.items():
                info.shards = len(self.assignment.shards_of(worker_id))
            return dict(self._info)

    def _heartbeat_targets(self):
        with self._lock:
            live = [(w, self._clients[w]) for w, info in self._info.items() if info.alive]
        return [(w, client.ping) for w, client in live]

    def _on_heartbeat_alive(self, worker_id: str, pong) -> None:
        with self._lock:
            info = self._info.get(worker_id)
            if info is not None:
                info.heartbeats += 1
                info.consecutive_misses = 0
                if isinstance(pong, Pong):
                    info.solves = pong.solves
        # DistStats.heartbeat_misses mirrors the monitor's counter lazily;
        # successful probes need no bookkeeping here.

    def _on_heartbeat_miss(self, worker_id: str) -> None:
        with self._lock:
            info = self._info.get(worker_id)
            if info is not None:
                info.misses += 1
                info.consecutive_misses = self.monitor.misses_for(worker_id)

    def _on_heartbeat_dead(self, worker_id: str, reason: str) -> None:
        self.fail_worker(worker_id, reason)

    def fail_worker(self, worker_id: str, reason: str) -> None:
        """Declare a worker dead: close it, orphan + mark its shards.

        Idempotent; callable from the heartbeat thread and from any solve
        thread that sees an RPC fault.  Reassigned keys are flagged so
        their next solve ships the mirrored cuts as seeds (warm failover).
        """
        with self._lock:
            info = self._info.get(worker_id)
            if info is None or not info.alive:
                return
            info.alive = False
            info.last_error = reason
            self._clients[worker_id].close()
            orphaned = self.assignment.drop_worker(worker_id)
            self._reseed.update(orphaned)
            self.stats.failovers += 1
            self.stats.reassignments += len(orphaned)
            self.stats.log_error(f"worker {worker_id} failed over ({len(orphaned)} shards): {reason}")
            alive = sum(1 for i in self._info.values() if i.alive)
        record_dist_failover(len(orphaned))
        set_dist_workers_alive(alive)

    # -- solving -------------------------------------------------------
    def solve_shards(
        self,
        shards: list[Shard],
        *,
        floors: np.ndarray | None = None,
        resource_totals: dict[str, float] | None = None,
    ) -> list[ShardResult]:
        """Drop-in for :func:`repro.core.sharding.solve_shards` over RPC.

        Shards are grouped by owner and each group runs on its own thread
        (a worker serializes its own solves).  An RPC fault fails the
        worker over and replays its unfinished shards on the survivors;
        the call only raises :class:`DistError` when no worker is left or
        a live worker *refuses* a solve (solver fault or protocol-version
        disagreement — retrying elsewhere would refuse identically).
        ``resource_totals`` carries the federation-wide dominant-share
        denominators for multi-resource shards (``None`` for scalar).
        """
        solvable = [sh for sh in shards if sh.n_jobs > 0]
        if not solvable:
            return []
        results: dict[int, ShardResult] = {}
        pending = list(range(len(solvable)))
        rounds = 0
        while pending:
            rounds += 1
            if rounds > len(self._addresses) + 2:  # pragma: no cover - defensive
                raise DistError("shard solve did not converge after repeated failovers")
            live = self.live_workers
            if not live:
                raise DistError("no live workers in the pool")
            groups: dict[str, list[int]] = {}
            with self._lock:
                for idx in pending:
                    owner = self.assignment.assign(solvable[idx].key, live)
                    groups.setdefault(owner, []).append(idx)
            faults: list[str] = []
            threads = [
                threading.Thread(
                    target=self._solve_group,
                    args=(worker_id, idxs, solvable, floors, resource_totals, results, faults),
                    name=f"dist-solve-{worker_id}",
                    daemon=True,
                )
                for worker_id, idxs in groups.items()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if faults:
                # A live worker refused the solve: the failure is in the
                # instance, not the topology — surface it.
                raise DistError("; ".join(faults))
            still = [idx for idx in pending if idx not in results]
            if still:
                self.stats.solve_retries += len(still)
            pending = still
        return [results[i] for i in range(len(solvable))]

    def _solve_group(
        self,
        worker_id: str,
        idxs: list[int],
        solvable: list[Shard],
        floors: np.ndarray | None,
        resource_totals: dict[str, float] | None,
        results: dict[int, ShardResult],
        faults: list[str],
    ) -> None:
        client = self._clients[worker_id]
        for idx in idxs:
            shard = solvable[idx]
            with self._lock:
                reseed = shard.key in self._reseed
                seeds = self.mirror.basis_for(shard.key).sets() if reseed else ()
            sub_floors = (
                None if floors is None else tuple(float(floors[i]) for i in shard.job_indices)
            )
            request = SolveShard(
                id=0,  # assigned per-RPC by the client
                key=tuple(sorted(shard.key)),
                cluster=cluster_to_dict(shard.cluster),
                oracle=self.oracle,
                seed_cuts=tuple(tuple(sorted(cut)) for cut in seeds),
                floors=sub_floors,
                resource_totals=(
                    None
                    if resource_totals is None
                    else tuple(sorted(resource_totals.items()))
                ),
            )
            t0 = time.perf_counter()
            try:
                reply = client.solve(request)
            except DistError as exc:
                # the worker answered — it is alive but cannot solve this
                with self._lock:
                    self.stats.rpcs += 1
                    self.stats.rpc_errors += 1
                    self.stats.log_error(str(exc))
                record_dist_rpc(time.perf_counter() - t0, ok=False)
                faults.append(str(exc))
                return
            except (OSError, ProtocolError, TimeoutError) as exc:
                with self._lock:
                    self.stats.rpcs += 1
                    self.stats.rpc_errors += 1
                record_dist_rpc(time.perf_counter() - t0, ok=False)
                self.fail_worker(worker_id, f"{type(exc).__name__}: {exc}")
                return  # unfinished idxs retry next round on survivors
            seconds = time.perf_counter() - t0
            record_dist_rpc(seconds)
            result = self._to_result(shard, reply)
            with self._lock:
                self.stats.rpcs += 1
                self.stats.rpc_seconds += seconds
                merge_diagnostics(self.stats.probes, result.diagnostics)
                self._reseed.discard(shard.key)
                pooled = self.mirror.basis_for(shard.key)
                for cut in result.discovered_cuts:
                    pooled.record(cut)
                results[idx] = result

    @staticmethod
    def _to_result(shard: Shard, reply: ShardSolved) -> ShardResult:
        matrix = np.asarray(reply.matrix, dtype=float).reshape(
            shard.cluster.n_jobs, shard.cluster.n_sites
        )
        diag_fields = reply.diagnostics or {}
        diagnostics = AmfDiagnostics(**diag_fields)
        return ShardResult(
            shard=shard,
            matrix=matrix,
            diagnostics=diagnostics,
            seconds=reply.seconds,
            discovered_cuts=tuple(frozenset(cut) for cut in reply.discovered_cuts),
        )

    # -- introspection ---------------------------------------------------
    def stats_dict(self) -> dict:
        """JSON-ready pool state for ``/v1/stats`` (``dist`` section)."""
        with self._lock:
            self.stats.heartbeat_misses = sum(i.misses for i in self._info.values())
            workers = {w: info.to_dict() for w, info in self.workers.items()}
            out = {
                "workers": workers,
                "workers_alive": sum(1 for i in self._info.values() if i.alive),
                "assignment": self.assignment.to_dict(),
                "mirror_shards": len(self.mirror),
                "mirror_cuts": self.mirror.total_cuts,
                **self.stats.to_dict(),
            }
        # fold the monitor's lifetime misses into the per-worker view
        for worker_id in workers:
            workers[worker_id]["consecutive_misses"] = self.monitor.misses_for(worker_id)
        return out
