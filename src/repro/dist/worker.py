"""The solver worker: a TCP process owning its shards' warm cut bases.

A :class:`SolverWorker` is the distributed counterpart of one slot in the
PR 5 fork pool, made long-lived: it listens on a socket, answers the wire
protocol (:mod:`repro.dist.protocol`), and keeps a
:class:`~repro.core.sharding.ShardBasisPool` so consecutive solves of the
same shard warm-start exactly like the in-process sharded solver.  The
solve itself *is* :func:`repro.core.sharding._solve_shard` — the same pure
function of (sub-cluster, floors, seed cuts, oracle) the fork pool runs —
which is what makes a distributed allocation bit-identical to
``solve_amf(shards=True)``.

Connections are handled one thread each (the coordinator keeps a control
connection for heartbeats and a solve connection for RPCs, so a long solve
never blocks a ping).  Protocol violations are answered with an
``error`` frame where possible and always end with the connection closed —
a poisoned byte stream is never resynchronized.  ``SIGTERM``/``SIGINT``
trigger a graceful stop: in-flight solves finish, their replies flush, the
listener closes (mirroring the daemon-side drain of
:meth:`repro.service.daemon.AllocationService.close`).

:func:`spawn_local_workers` boots N workers as local processes for
``repro.cli serve --distributed N``, the benchmark and the smoke test.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
from dataclasses import asdict

import numpy as np

from repro._util import require
from repro.core.sharding import Shard, ShardBasisPool, _solve_shard
from repro.dist.protocol import (
    ConnectionClosed,
    ErrorReply,
    FrameTooLarge,
    Hello,
    HelloAck,
    Message,
    Ping,
    Pong,
    ProtocolError,
    ShardSolved,
    Shutdown,
    ShutdownAck,
    SolveShard,
    VersionMismatch,
    recv_message,
    send_message,
)
from repro.model.serialize import cluster_from_dict

__all__ = ["SolverWorker", "run_worker", "spawn_local_workers"]

#: Per-connection socket timeout: bounds how long a worker waits on a
#: stalled peer mid-frame (idle connections between frames are also
#: bounded — the coordinator heartbeats far more often than this).
CONNECTION_TIMEOUT = 120.0


class SolverWorker:
    """One solver process: TCP listener + per-shard warm bases.

    Parameters
    ----------
    host / port:
        Bind address (``port=0`` picks an ephemeral port; read
        :attr:`address` after construction).
    max_cuts:
        Bound on each per-shard cut basis (as in the in-process pool).
    worker_id:
        Stable identity reported in handshakes; defaults to
        ``worker-<port>``.
    oracle:
        Default feasibility backend when a request does not name one.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_cuts: int = 64,
        worker_id: str | None = None,
        oracle: str = "parametric",
        quiet: bool = True,
    ):
        require(max_cuts >= 1, "max_cuts must be at least 1")
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self.worker_id = worker_id or f"worker-{self.address[1]}"
        self.oracle = oracle
        self.quiet = quiet
        self.bases = ShardBasisPool(max_cuts=max_cuts)
        self.solves = 0
        self.errors = 0
        self._lock = threading.Lock()  # bases + counters
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return not self._stop.is_set()

    def start(self) -> "SolverWorker":
        """Serve in a background thread (tests and embedded pools)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name=f"{self.worker_id}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept loop (blocking): one handler thread per connection."""
        self._log(f"{self.worker_id} listening on {self.address[0]}:{self.address[1]}")
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by close()
            thread = threading.Thread(
                target=self._handle, args=(conn,), name=f"{self.worker_id}-conn", daemon=True
            )
            thread.start()
            self._threads.append(thread)
            self._threads = [t for t in self._threads if t.is_alive()]

    def close(self) -> None:
        """Graceful stop: no new connections, in-flight handlers finish."""
        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "SolverWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(message, flush=True)

    # -- connection handling -------------------------------------------
    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(CONNECTION_TIMEOUT)
        try:
            while not self._stop.is_set():
                try:
                    msg = recv_message(conn)
                except ConnectionClosed:
                    return
                except FrameTooLarge as exc:
                    # The oversized payload was never read; the stream is
                    # unusable, so answer once and hang up.
                    self._reply_error(conn, 0, "frame_too_large", str(exc))
                    return
                except VersionMismatch as exc:
                    # Fail closed: name the disagreement so the coordinator
                    # counts this backend dead instead of retrying blind.
                    self._reply_error(conn, 0, "version_mismatch", str(exc))
                    return
                except ProtocolError as exc:
                    self._reply_error(conn, 0, "bad_request", str(exc))
                    return
                except TimeoutError:
                    return  # stalled peer; drop the connection
                reply = self._dispatch(msg)
                send_message(conn, reply)
                if isinstance(reply, ShutdownAck):
                    self._stop.set()
                    self._listener.close()
                    return
        except OSError:
            return  # peer vanished mid-write; nothing to salvage
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _reply_error(self, conn: socket.socket, id: int, code: str, message: str) -> None:
        with self._lock:
            self.errors += 1
        try:
            send_message(conn, ErrorReply(id=id, code=code, message=message))
        except OSError:  # pragma: no cover - peer already gone
            pass

    def _dispatch(self, msg: Message) -> Message:
        if isinstance(msg, Ping):
            with self._lock:
                return Pong(id=msg.id, worker_id=self.worker_id, shards=len(self.bases), solves=self.solves)
        if isinstance(msg, Hello):
            with self._lock:
                return HelloAck(
                    id=msg.id, worker_id=self.worker_id, shards=len(self.bases), solves=self.solves
                )
        if isinstance(msg, SolveShard):
            try:
                return self._solve(msg)
            except Exception as exc:  # noqa: BLE001 - surfaced to the coordinator
                with self._lock:
                    self.errors += 1
                return ErrorReply(id=msg.id, code="internal", message=f"{type(exc).__name__}: {exc}")
        if isinstance(msg, Shutdown):
            self._log(f"{self.worker_id} shutting down on request")
            return ShutdownAck(id=msg.id)
        with self._lock:
            self.errors += 1
        return ErrorReply(
            id=msg.id, code="bad_request", message=f"unexpected message type {msg.TYPE!r}"
        )

    # -- the actual work -----------------------------------------------
    def _solve(self, msg: SolveShard) -> ShardSolved:
        if msg.cluster is None:
            raise ProtocolError("solve_shard needs a 'cluster' body field")
        sub = cluster_from_dict(msg.cluster)
        key = frozenset(msg.key)
        shard = Shard(
            key=key,
            site_indices=tuple(range(sub.n_sites)),
            job_indices=tuple(range(sub.n_jobs)),
            cluster=sub,
        )
        with self._lock:
            basis = self.bases.basis_for(key)
            for cut in msg.seed_cuts:
                basis.record(frozenset(cut))
            seeds = basis.sets()
            max_cuts = self.bases.max_cuts
        floors = None if msg.floors is None else list(msg.floors)
        totals = None if msg.resource_totals is None else dict(msg.resource_totals)
        result = _solve_shard(
            shard,
            None if floors is None else np.asarray(floors, dtype=float),
            seeds,
            max_cuts,
            msg.oracle or self.oracle,
            resource_totals=totals,
        )
        with self._lock:
            pooled = self.bases.basis_for(key)
            for cut in result.discovered_cuts:
                pooled.record(cut)
            self.solves += 1
        return ShardSolved(
            id=msg.id,
            key=tuple(sorted(key)),
            matrix=tuple(tuple(float(x) for x in row) for row in result.matrix),
            diagnostics={k: int(v) for k, v in asdict(result.diagnostics).items()},
            seconds=float(result.seconds),
            discovered_cuts=tuple(tuple(sorted(cut)) for cut in result.discovered_cuts),
        )


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_cuts: int = 64,
    worker_id: str | None = None,
    oracle: str = "parametric",
    quiet: bool = False,
    _conn=None,
) -> int:
    """Blocking entry point (``repro.cli worker``): serve until SIGTERM.

    ``oracle`` is the fallback backend for solve RPCs that do not name
    one (the coordinator's pool names its own in every request, which
    wins).  ``_conn`` is the pipe :func:`spawn_local_workers` uses to
    learn the bound address of a child that asked for an ephemeral port.
    """
    worker = SolverWorker(
        host, port, max_cuts=max_cuts, worker_id=worker_id, oracle=oracle, quiet=quiet
    )
    if _conn is not None:
        _conn.send(worker.address)
        _conn.close()

    def _graceful(signum, frame):  # noqa: ARG001 - signal API
        worker.close()

    try:
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    worker.serve_forever()
    return 0


def _local_worker_main(host: str, port: int, max_cuts: int, worker_id: str, conn) -> None:
    run_worker(host, port, max_cuts=max_cuts, worker_id=worker_id, quiet=True, _conn=conn)


def spawn_local_workers(
    n: int, *, host: str = "127.0.0.1", max_cuts: int = 64
) -> tuple[list[multiprocessing.Process], list[tuple[str, int]]]:
    """Boot ``n`` worker processes on ephemeral ports; returns (procs, addresses).

    Uses ``fork`` where available (the workers import nothing new), else
    the platform default start method.  Caller owns the processes: send
    ``SIGTERM`` (or a ``shutdown`` frame) to stop them.
    """
    require(n >= 1, "need at least one worker")
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    processes: list[multiprocessing.Process] = []
    addresses: list[tuple[str, int]] = []
    for i in range(n):
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_local_worker_main,
            args=(host, 0, max_cuts, f"worker-{i}-{os.getpid()}", child),
            daemon=True,
        )
        proc.start()
        child.close()
        if not parent.poll(10.0):  # pragma: no cover - boot failure
            raise RuntimeError(f"local worker {i} did not report its address")
        addresses.append(tuple(parent.recv()))
        parent.close()
        processes.append(proc)
    return processes, addresses
