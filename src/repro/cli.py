"""Command-line entry points: ``python -m repro.cli`` / ``repro-amf``.

Subcommands
-----------

``experiment <ID ...>``
    Regenerate paper figures/tables (F1..F8, T1..T3, or ``all``).
``solve``
    Solve one random (or demo) instance under a policy and print the
    allocation, balance metrics and properties.
``simulate``
    Run the fluid simulator on a generated workload and print JCT stats.
``validate``
    Generate an instance and print its diagnostics.
``serve``
    Boot the online allocation service (HTTP/JSON; docs/service.md).
    ``--distributed N`` self-hosts a solver-worker pool of N local
    processes and proxies shard solves to it (docs/distributed.md).
``worker``
    Boot one solver-worker process of the distributed pool.
``coordinator``
    Boot the service against already-running workers (``--worker
    host:port`` per worker).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.experiments import EXPERIMENTS
from repro.core import properties
from repro.core.policies import POLICIES, get_policy
from repro.metrics.fairness import balance_report
from repro.model.validation import validate_instance
from repro.sim.engine import simulate
from repro.workload.generator import WorkloadSpec, generate_cluster, generate_jobs, sites_for


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        metavar="JSON",
        help="enable repro.obs and write collected trace spans as Chrome-trace "
        "JSON (load in chrome://tracing or ui.perfetto.dev)",
    )


def _start_tracing(args) -> bool:
    """Enable observability when ``--trace-out`` was given."""
    if not getattr(args, "trace_out", None):
        return False
    from repro import obs

    obs.enable()
    return True


def _finish_tracing(args) -> None:
    from repro.obs.tracing import TRACER

    n = TRACER.export(args.trace_out)
    print(f"wrote {n} trace spans to {args.trace_out}")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=20, help="number of jobs")
    p.add_argument("--sites", type=int, default=6, help="number of sites")
    p.add_argument("--theta", type=float, default=1.2, help="workload skew (0 = uniform)")
    p.add_argument("--seed", type=int, default=0, help="random seed")
    p.add_argument(
        "--scenario",
        metavar="NAME",
        help="use a named preset instead of --jobs/--sites/--theta (see repro.workload.scenarios)",
    )


def _spec(args) -> WorkloadSpec:
    if getattr(args, "scenario", None):
        from repro.workload.scenarios import get_scenario

        return get_scenario(args.scenario)
    return WorkloadSpec(n_jobs=args.jobs, n_sites=args.sites, theta=args.theta)


def cmd_experiment(args) -> int:
    if args.workers:
        from repro.analysis.parallel import set_default_workers

        # Experiments take no workers argument; raising the process-wide
        # default routes their internal sweep1d grids through the pool.
        set_default_workers(args.workers)
    if args.list:
        for eid, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{eid:4s} {doc}")
        return 0
    ids = list(EXPERIMENTS) if "all" in args.ids else [i.upper() for i in args.ids]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    tracing = _start_tracing(args)
    for eid in ids:
        out = EXPERIMENTS[eid](scale=args.scale)
        print(out.text)
        print()
    if tracing:
        _finish_tracing(args)
    return 0


def cmd_solve(args) -> int:
    rng = np.random.default_rng(args.seed)
    if args.load:
        from repro.model.serialize import load_cluster

        cluster = load_cluster(args.load)
    else:
        cluster = generate_cluster(_spec(args), rng)
    tracing = _start_tracing(args)
    if args.shards:
        if args.policy != "amf":
            print(f"--shards only applies to the amf policy, not {args.policy!r}", file=sys.stderr)
            return 2
        from repro.core.amf import solve_amf
        from repro.core.sharding import decompose

        alloc = solve_amf(
            cluster, oracle=args.oracle, shards=True, workers=args.solve_workers or None
        )
        suffix = f", workers={args.solve_workers}" if args.solve_workers else ""
        print(f"sharded solve: {len(decompose(cluster))} components{suffix}")
    elif args.oracle != "parametric":
        if args.policy != "amf":
            print(f"--oracle only applies to the amf policy, not {args.policy!r}", file=sys.stderr)
            return 2
        from repro.core.amf import solve_amf

        alloc = solve_amf(cluster, oracle=args.oracle)
    else:
        alloc = get_policy(args.policy)(cluster)
    if tracing:
        _finish_tracing(args)
    print(alloc.pretty())
    rep = balance_report(alloc)
    print(f"\nbalance: jain={rep.jain:.4f} cov={rep.cov:.4f} min/max={rep.min_max:.4f}")
    if args.check:
        prop = properties.check_all(alloc)
        print(
            f"properties: pareto={prop.pareto} max-min={prop.max_min} "
            f"envy-free={prop.envy_free} sharing-incentive={prop.sharing_incentive}"
        )
    if args.save:
        from repro.model.serialize import save_allocation

        save_allocation(alloc, args.save)
        print(f"allocation written to {args.save}")
    return 0


def cmd_simulate(args) -> int:
    rng = np.random.default_rng(args.seed)
    spec = _spec(args)
    jobs = generate_jobs(spec, rng)
    sites = sites_for(spec, jobs)
    trace = None
    observer = None
    observers = []
    policy = args.policy
    if args.resilient or args.failures:
        from repro.core.policies import ResilientPolicy

        policy = ResilientPolicy(args.policy)
    faults = None
    if args.failures:
        from repro.workload.failures import FailureSpec, generate_failure_trace

        # Failure horizon ~ the batch's drain time (total work over capacity,
        # with headroom for churn-induced slowdown).
        t0 = sum(j.total_work for j in jobs) / sum(s.capacity for s in sites)
        fspec = FailureSpec(mtbf=args.mtbf, mttr=args.mttr, horizon=4.0 * t0, degraded_fraction=args.degraded)
        faults = generate_failure_trace([s.name for s in sites], fspec, rng)
    if args.trace:
        from repro.sim.trace import Trace

        trace = Trace(max_events=10_000)
    if args.observe or args.failures:
        from repro.sim.observers import (
            AvailabilityObserver,
            BalanceObserver,
            ChurnObserver,
            CompositeObserver,
            UtilizationObserver,
        )

        wanted = list(args.observe)
        if args.failures and "availability" not in wanted:
            wanted.append("availability")
        named = {
            "balance": BalanceObserver(),
            "churn": ChurnObserver(),
            "utilization": UtilizationObserver(),
            "availability": AvailabilityObserver(policy=policy if not isinstance(policy, str) else None),
        }
        if "metrics" in wanted:
            from repro.obs import REGISTRY, SimObserver

            REGISTRY.enable()
            named["metrics"] = SimObserver()
        observers = [(n, named[n]) for n in wanted]
        observer = CompositeObserver([o for _, o in observers])
    tracing = _start_tracing(args)
    res = simulate(
        sites,
        jobs,
        policy,
        trace=trace,
        observer=observer,
        faults=faults,
        failure_mode=args.failure_mode,
        max_retries=args.max_retries,
        restart_penalty=args.restart_penalty,
    )
    if tracing:
        _finish_tracing(args)
    print(res)
    if not isinstance(policy, str) and hasattr(getattr(policy, "stats", None), "served_by"):
        stats = policy.stats
        served = ", ".join(f"{k}={v}" for k, v in sorted(stats.served_by.items())) or "none"
        print(
            f"resilience: {stats.solves} solves, {stats.fallback_activations} fallback "
            f"activations, {len(stats.errors)} errors; served by: {served}"
        )
        for line in stats.errors[:5]:
            print(f"  error: {line}")
    if args.failures:
        print(
            f"faults: {res.n_failures} failures, {res.n_recoveries} recoveries, "
            f"{res.n_requeues} requeues, {res.n_migrations} migrations; "
            f"work lost {res.work_lost:.3f}, re-executed {res.work_reexecuted:.3f}, "
            f"degraded jobs {res.n_degraded}"
        )
    if trace is not None:
        print("\nevent trace:")
        print(trace.render(limit=args.trace))
    for name, obs in observers:
        if name == "balance":
            print(f"\ntime-averaged balance: jain={obs.time_avg_jain:.4f} cov={obs.time_avg_cov:.4f}")
        elif name == "churn":
            print(f"\nmean allocation churn per event: {obs.mean_churn:.4f}")
        elif name == "utilization":
            avgs = ", ".join(f"{k}={v:.3f}" for k, v in obs.averages().items())
            print(f"\ntime-averaged site utilization: {avgs}")
        elif name == "availability":
            print(
                f"\navailability: {obs.availability:.4f} "
                f"(fallback activations: {obs.fallback_activations})"
            )
        elif name == "metrics":
            s = obs.summary()
            print(
                f"\nobs registry: {s['steps']:.0f} steps, "
                f"{s['simulated_time']:.3f} simulated time, "
                f"mean step wall {1e3 * s['mean_step_wall_seconds']:.3f} ms"
            )
    return 0


def cmd_validate(args) -> int:
    rng = np.random.default_rng(args.seed)
    cluster = generate_cluster(_spec(args), rng)
    print(validate_instance(cluster))
    return 0


def _serve_state(args):
    from repro.service import ClusterState

    if args.load:
        from repro.model.serialize import load_cluster

        cluster = load_cluster(args.load)
        return ClusterState(cluster.sites, cluster.jobs)
    from repro.model.site import Site

    return ClusterState([Site(f"s{j}", args.capacity) for j in range(args.sites)])


def _serve_journal(args, state):
    """``serve --journal DIR``: recover the pre-crash state, open the WAL.

    A snapshot in the directory wins over ``--load``/``--sites`` (the
    journal is the durable truth of the previous incarnation); on a fresh
    directory the built state is checkpointed as the starting point.
    Returns ``(state, journal)`` — journal ``None`` without the flag.
    """
    directory = getattr(args, "journal", None)
    if not directory:
        return state, None
    from repro.service.journal import open_journal

    state2, journal, rec = open_journal(
        directory,
        fallback_state=state,
        fsync_batch=getattr(args, "journal_fsync", 64),
    )
    if rec.cluster is not None or rec.events:
        print(
            f"journal: recovered state at seq {rec.seq} "
            f"({len(rec.events)} events replayed on top of snapshot {rec.snapshot_seq}"
            + (f", {rec.dropped_lines} torn lines dropped)" if rec.dropped_lines else ")")
        )
    return state2, journal


def _run_edge(args, service) -> int:
    """Dispatch to the selected HTTP edge (blocking until shutdown)."""
    if getattr(args, "edge", "thread") == "aio":
        from repro.service.aio import serve_aio

        serve_aio(
            service,
            host=args.host,
            port=args.port,
            max_pending=getattr(args, "max_pending", 1024),
            quiet=args.quiet,
        )
    else:
        from repro.service.http import serve

        serve(service, host=args.host, port=args.port, quiet=args.quiet)
    return 0


def _serve_with_pool(args, state, addresses) -> int:
    """Boot the service distributed: connect a WorkerPool, serve, clean up."""
    from repro.dist import WorkerPool
    from repro.service import AllocationService

    state, journal = _serve_journal(args, state)
    pool = WorkerPool(addresses, oracle=args.oracle, max_cuts=args.max_cuts).start()
    print(f"solver pool: {len(pool.live_workers)} workers at {addresses}")
    service = AllocationService(
        state,
        max_delay=args.max_delay,
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        max_cuts=args.max_cuts,
        workers=args.serve_workers or None,
        oracle=args.oracle,
        backend="dist",
        pool=pool,
        journal=journal,
        observability=not args.no_obs,
    )
    return _run_edge(args, service)


def cmd_serve(args) -> int:
    from repro.service import AllocationService

    state = _serve_state(args)
    if args.distributed:
        from repro.dist import spawn_local_workers

        if args.no_shards:
            print("--distributed implies sharding; drop --no-shards", file=sys.stderr)
            return 2
        processes, addresses = spawn_local_workers(args.distributed, max_cuts=args.max_cuts)
        try:
            return _serve_with_pool(args, state, addresses)
        finally:
            for proc in processes:
                proc.terminate()
            for proc in processes:
                proc.join(timeout=5.0)
    state, journal = _serve_journal(args, state)
    service = AllocationService(
        state,
        max_delay=args.max_delay,
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        max_cuts=args.max_cuts,
        sharded=not args.no_shards,
        workers=args.serve_workers or None,
        oracle=args.oracle,
        journal=journal,
        observability=not args.no_obs,
    )
    return _run_edge(args, service)


def _parse_address(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected host:port, got {text!r}")
    return (host or "127.0.0.1", int(port))


def cmd_worker(args) -> int:
    from repro.dist import run_worker

    return run_worker(
        args.host,
        args.port,
        max_cuts=args.max_cuts,
        worker_id=args.worker_id,
        oracle=args.oracle,
        quiet=args.quiet,
    )


def cmd_coordinator(args) -> int:
    return _serve_with_pool(args, _serve_state(args), args.workers)


def cmd_report(args) -> int:
    from repro.analysis.report import write_report

    tracing = _start_tracing(args)
    report = write_report(args.out, scale=args.scale, experiments=args.only or None, workers=args.workers or None)
    if tracing:
        _finish_tracing(args)
    failed = [s.experiment for s in report.sections if s.error is not None]
    print(f"wrote {args.out}: {len(report.sections)} experiments in {report.total_seconds:.1f}s")
    if failed:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-amf", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="regenerate paper figures/tables")
    p_exp.add_argument("ids", nargs="*", default=[], help="experiment ids (F1..F8, T1..T3, X1..X2) or 'all'")
    p_exp.add_argument("--scale", type=float, default=1.0, help="size scale (use <1 for a quick run)")
    p_exp.add_argument("--list", action="store_true", help="list experiments and exit")
    p_exp.add_argument(
        "--workers", type=int, default=0, help="fan sweep grids over N processes (0 = REPRO_WORKERS or serial)"
    )
    _add_trace_arg(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_solve = sub.add_parser("solve", help="solve one generated instance")
    _add_workload_args(p_solve)
    p_solve.add_argument("--policy", choices=sorted(POLICIES), default="amf")
    p_solve.add_argument("--check", action="store_true", help="also run property checks")
    p_solve.add_argument("--load", metavar="JSON", help="solve a cluster loaded from a JSON file instead of generating one")
    p_solve.add_argument("--save", metavar="JSON", help="write the allocation (with cluster) to a JSON file")
    p_solve.add_argument(
        "--shards",
        action="store_true",
        help="solve connected components independently (amf only; identical allocation)",
    )
    p_solve.add_argument(
        "--workers",
        dest="solve_workers",
        type=int,
        default=0,
        metavar="N",
        help="with --shards, fan component solves over N processes (0 = serial)",
    )
    p_solve.add_argument(
        "--oracle",
        choices=("parametric", "legacy", "ggt"),
        default="parametric",
        help="feasibility backend (amf only; ggt = one-shot breakpoint sweep, docs/performance.md)",
    )
    _add_trace_arg(p_solve)
    p_solve.set_defaults(fn=cmd_solve)

    p_sim = sub.add_parser("simulate", help="simulate a generated batch")
    _add_workload_args(p_sim)
    p_sim.add_argument("--policy", choices=sorted(POLICIES), default="amf-ct-quick")
    p_sim.add_argument("--trace", type=int, nargs="?", const=25, default=0, metavar="N", help="print the first N events")
    p_sim.add_argument(
        "--observe",
        nargs="+",
        choices=["balance", "churn", "utilization", "availability", "metrics"],
        default=[],
        help="attach observers and print their summaries ('metrics' feeds the repro.obs registry)",
    )
    _add_trace_arg(p_sim)
    p_fail = p_sim.add_argument_group("fault tolerance (docs/robustness.md)")
    p_fail.add_argument("--failures", action="store_true", help="inject Poisson site failures/recoveries")
    p_fail.add_argument("--mtbf", type=float, default=50.0, help="mean time between failures per site")
    p_fail.add_argument("--mttr", type=float, default=10.0, help="mean time to repair per site")
    p_fail.add_argument(
        "--failure-mode",
        choices=["retry", "migrate"],
        default="retry",
        help="what happens to in-flight work at a failed site",
    )
    p_fail.add_argument("--max-retries", type=int, default=3, help="retries per job-site edge before abandoning work")
    p_fail.add_argument(
        "--restart-penalty", type=float, default=1.0, help="fraction of in-progress attempt lost on failure (0..1)"
    )
    p_fail.add_argument(
        "--degraded", type=float, default=0.0, help="capacity fraction a failed site keeps (0 = full outage)"
    )
    p_fail.add_argument(
        "--resilient", action="store_true", help="wrap the policy in the solver fallback chain (implied by --failures)"
    )
    p_sim.set_defaults(fn=cmd_simulate)

    p_val = sub.add_parser("validate", help="diagnostics of a generated instance")
    _add_workload_args(p_val)
    p_val.set_defaults(fn=cmd_validate)

    p_srv = sub.add_parser("serve", help="boot the online allocation service (docs/service.md)")
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    p_srv.add_argument("--sites", type=int, default=4, help="number of sites to boot with (s0..s{N-1})")
    p_srv.add_argument("--capacity", type=float, default=10.0, help="capacity per booted site")
    p_srv.add_argument("--load", metavar="JSON", help="boot from a cluster JSON file instead of empty sites")
    p_srv.add_argument("--max-delay", type=float, default=0.05, help="seconds an event may wait for its batch")
    p_srv.add_argument("--max-batch", type=int, default=256, help="max events coalesced into one re-solve")
    p_srv.add_argument("--cache-size", type=int, default=128, help="allocation cache entries (LRU)")
    p_srv.add_argument("--max-cuts", type=int, default=64, help="persistent cutting-plane pool bound")
    p_srv.add_argument(
        "--no-shards",
        action="store_true",
        help="solve monolithically instead of per connected component (docs/performance.md)",
    )
    p_srv.add_argument(
        "--workers",
        dest="serve_workers",
        type=int,
        default=0,
        metavar="N",
        help="fan shard solves over N processes (0 = serial)",
    )
    p_srv.add_argument(
        "--oracle",
        choices=("parametric", "legacy", "ggt"),
        default="parametric",
        help="feasibility backend for service solves (docs/performance.md)",
    )
    p_srv.add_argument(
        "--edge",
        choices=("thread", "aio"),
        default="thread",
        help="HTTP front-end: 'thread' (stdlib ThreadingHTTPServer) or 'aio' "
        "(asyncio, lock-free reads + 429 admission control; docs/service.md)",
    )
    p_srv.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="write-ahead journal directory: accepted events are journaled before "
        "acknowledgement and the pre-crash state is recovered at boot (docs/service.md)",
    )
    p_srv.add_argument(
        "--journal-fsync",
        type=int,
        default=64,
        metavar="N",
        help="group-commit size: fsync after N journaled events (1 = synchronous durability)",
    )
    p_srv.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="aio edge only: shed writes with 429 beyond N undispatched work items",
    )
    p_srv.add_argument("--quiet", action="store_true", help="suppress per-request access logs")
    p_srv.add_argument(
        "--no-obs",
        action="store_true",
        help="leave the repro.obs metrics registry and tracer disabled (GET /metrics and /traces serve empty data)",
    )
    p_srv.add_argument(
        "--distributed",
        type=int,
        default=0,
        metavar="N",
        help="self-host a solver pool of N local worker processes and proxy "
        "shard solves to it (docs/distributed.md; 0 = in-process)",
    )
    p_srv.set_defaults(fn=cmd_serve)

    p_wrk = sub.add_parser("worker", help="boot one solver-worker process (docs/distributed.md)")
    p_wrk.add_argument("--host", default="127.0.0.1", help="bind address")
    p_wrk.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral, printed at boot)")
    p_wrk.add_argument("--max-cuts", type=int, default=64, help="per-shard warm basis bound")
    p_wrk.add_argument("--worker-id", default=None, help="stable identity (default: worker-<port>)")
    p_wrk.add_argument(
        "--oracle",
        choices=("parametric", "legacy", "ggt"),
        default="parametric",
        help="fallback backend for solve RPCs that name none (the coordinator's wins)",
    )
    p_wrk.add_argument("--quiet", action="store_true", help="suppress the listening banner")
    p_wrk.set_defaults(fn=cmd_worker)

    p_coord = sub.add_parser(
        "coordinator", help="boot the service against running workers (docs/distributed.md)"
    )
    p_coord.add_argument(
        "--worker",
        dest="workers",
        action="append",
        type=_parse_address,
        required=True,
        metavar="HOST:PORT",
        help="address of a running solver worker (repeat per worker)",
    )
    p_coord.add_argument("--host", default="127.0.0.1", help="bind address")
    p_coord.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    p_coord.add_argument("--sites", type=int, default=4, help="number of sites to boot with")
    p_coord.add_argument("--capacity", type=float, default=10.0, help="capacity per booted site")
    p_coord.add_argument("--load", metavar="JSON", help="boot from a cluster JSON file")
    p_coord.add_argument("--max-delay", type=float, default=0.05, help="seconds an event may wait")
    p_coord.add_argument("--max-batch", type=int, default=256, help="max events per re-solve")
    p_coord.add_argument("--cache-size", type=int, default=128, help="allocation cache entries")
    p_coord.add_argument("--max-cuts", type=int, default=64, help="cutting-plane pool bound")
    p_coord.add_argument(
        "--workers-local",
        dest="serve_workers",
        type=int,
        default=0,
        metavar="N",
        help="fork fan-out for any locally served fallback solves (0 = serial)",
    )
    p_coord.add_argument(
        "--oracle",
        choices=("parametric", "legacy", "ggt"),
        default="parametric",
        help="feasibility backend named in every solve RPC (docs/performance.md)",
    )
    p_coord.add_argument("--quiet", action="store_true", help="suppress access logs")
    p_coord.add_argument("--no-obs", action="store_true", help="disable metrics/tracing")
    p_coord.set_defaults(fn=cmd_coordinator)

    p_rep = sub.add_parser("report", help="run all experiments and write a markdown report")
    p_rep.add_argument("--out", default="report.md", help="output path")
    p_rep.add_argument("--scale", type=float, default=1.0, help="experiment size scale")
    p_rep.add_argument("--only", nargs="*", default=[], help="restrict to these experiment ids")
    p_rep.add_argument(
        "--workers", type=int, default=0, help="run experiments in N parallel processes (0 = REPRO_WORKERS or serial)"
    )
    _add_trace_arg(p_rep)
    p_rep.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
