"""Poisson arrival processes for the dynamic load-sweep experiments (F7)
and the churn schedules that drive the online allocation service (X9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.model.job import Job
from repro.model.site import Site
from repro.workload.generator import WorkloadSpec, generate_jobs


@dataclass(frozen=True, slots=True)
class ArrivalSpec:
    """Open-system arrivals layered on a :class:`WorkloadSpec` spatial model.

    ``load`` is the offered load ``rho`` = (work arrival rate) / (total
    service capacity); stable dynamics need ``rho < 1``.  Arrival times are
    Poisson with rate ``n_jobs / horizon`` where the horizon is derived from
    the load.
    """

    workload: WorkloadSpec = WorkloadSpec()
    load: float = 0.7
    site_capacity: float = 10.0

    def __post_init__(self) -> None:
        require(0.0 < self.load, "load must be positive")
        require(self.site_capacity > 0.0, "site capacity must be positive")


def generate_arrival_jobs(spec: ArrivalSpec, rng: np.random.Generator) -> tuple[list[Site], list[Job]]:
    """Sample sites and arrival-stamped jobs matching offered load ``spec.load``.

    Total work of the batch is ``W``; the arrival horizon is set to
    ``W / (load * total_capacity)`` so the offered load over the horizon is
    ``load``.  Demand caps are kept from the workload spec (they bound how
    fast any single job can drain, independent of load).
    """
    base = generate_jobs(spec.workload, rng)
    sites = [Site(f"s{j}", spec.site_capacity) for j in range(spec.workload.n_sites)]
    total_capacity = spec.site_capacity * spec.workload.n_sites
    total_work = sum(j.total_work for j in base)
    horizon = total_work / (spec.load * total_capacity)
    # Poisson process: exponential gaps normalized onto the horizon.
    gaps = rng.exponential(1.0, size=len(base))
    times = np.cumsum(gaps)
    times = times / times[-1] * horizon if times[-1] > 0 else times
    jobs = [replace_arrival(job, float(t)) for job, t in zip(base, times)]
    return sites, jobs


def generate_churn_schedule(
    spec: ArrivalSpec,
    rng: np.random.Generator,
    *,
    target_population: int = 12,
) -> tuple[list[Site], list[tuple[float, str, Job | str]]]:
    """Arrival *and departure* events for an open-system churn stream.

    Arrivals are the Poisson process of :func:`generate_arrival_jobs`; each
    job then resides for an exponential sojourn whose mean is set by
    Little's law so the time-average number of jobs in the system is about
    ``target_population`` (``mean residence = target_population / lambda``).

    Returns ``(sites, schedule)`` where the schedule is a time-sorted list
    of plain ``(time, kind, payload)`` tuples — ``("arrive", Job)`` or
    ``("depart", job_name)`` — deliberately free of service-layer types so
    this module stays independent of :mod:`repro.service` (which adapts
    them via ``events_from_schedule``).
    """
    require(target_population >= 1, "target_population must be at least 1")
    sites, jobs = generate_arrival_jobs(spec, rng)
    horizon = max(j.arrival for j in jobs) if jobs else 0.0
    arrival_rate = len(jobs) / horizon if horizon > 0 else 1.0
    mean_residence = target_population / arrival_rate
    schedule: list[tuple[float, str, Job | str]] = []
    for job in jobs:
        schedule.append((job.arrival, "arrive", job))
        departure = job.arrival + float(rng.exponential(mean_residence))
        schedule.append((departure, "depart", job.name))
    # Sort by time; at ties, arrivals first so a zero-residence job still
    # arrives before its own departure.
    schedule.sort(key=lambda e: (e[0], 0 if e[1] == "arrive" else 1))
    return sites, schedule


def replace_arrival(job: Job, arrival: float) -> Job:
    """Copy of ``job`` with a new arrival time."""
    return Job(
        name=job.name,
        workload=dict(job.workload),
        demand=dict(job.demand),
        weight=job.weight,
        arrival=arrival,
    )
