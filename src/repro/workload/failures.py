"""Seeded site-failure traces: Poisson MTBF/MTTR churn per site.

The fault-tolerance experiments (X8, docs/robustness.md) drive the
simulator with a list of :class:`~repro.sim.trace.FaultEvent` inputs.
This module generates them from the classic renewal model: each site
alternates between *up* intervals drawn ``Exponential(mtbf)`` and *down*
intervals drawn ``Exponential(mttr)``, independently across sites, from
one seeded :class:`numpy.random.Generator`.

Every generated failure is paired with its recovery — even when the
repair lands past ``horizon`` — so a simulation consuming the trace never
ends with a site wedged down by trace truncation rather than by the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.sim.trace import FaultEvent, SiteFailure, SiteRecovery


@dataclass(frozen=True, slots=True)
class FailureSpec:
    """Parameters of the per-site renewal failure process.

    ``mtbf``/``mttr`` are the means of the exponential up/down times, in
    the same time unit as the simulation.  ``degraded_fraction`` is the
    capacity fraction a failed site retains (0 = full outage, (0,1) =
    brownout).  ``max_failures_per_site`` caps the number of failures a
    single site can contribute (None = unlimited within the horizon).
    """

    mtbf: float = 50.0
    mttr: float = 10.0
    horizon: float = 200.0
    degraded_fraction: float = 0.0
    max_failures_per_site: int | None = None

    def __post_init__(self) -> None:
        require(self.mtbf > 0.0, f"mtbf must be positive, got {self.mtbf}")
        require(self.mttr > 0.0, f"mttr must be positive, got {self.mttr}")
        require(self.horizon > 0.0, f"horizon must be positive, got {self.horizon}")
        require(
            0.0 <= self.degraded_fraction < 1.0,
            f"degraded_fraction must be in [0, 1), got {self.degraded_fraction}",
        )
        require(
            self.max_failures_per_site is None or self.max_failures_per_site >= 0,
            "max_failures_per_site must be None or >= 0",
        )


def generate_failure_trace(
    site_names: list[str] | tuple[str, ...],
    spec: FailureSpec = FailureSpec(),
    rng: np.random.Generator | None = None,
) -> list[FaultEvent]:
    """Draw a failure/recovery trace for ``site_names`` under ``spec``.

    Returns the merged per-site renewal processes as a single list sorted
    by ``(time, site)``; per site the events strictly alternate
    failure/recovery starting from an *up* state at time 0.
    """
    require(len(site_names) > 0, "need at least one site name")
    require(len(set(site_names)) == len(site_names), "site names must be unique")
    if rng is None:
        rng = np.random.default_rng()
    events: list[FaultEvent] = []
    for name in site_names:
        n_failures = 0
        t = float(rng.exponential(spec.mtbf))
        while t < spec.horizon:
            if spec.max_failures_per_site is not None and n_failures >= spec.max_failures_per_site:
                break
            events.append(SiteFailure(t, name, spec.degraded_fraction))
            n_failures += 1
            repair = t + float(rng.exponential(spec.mttr))
            events.append(SiteRecovery(repair, name))
            t = repair + float(rng.exponential(spec.mtbf))
    events.sort(key=lambda e: (e.time, e.site))
    return events
