"""Named workload scenarios: reproducible presets for CLI and examples.

Each scenario is a :class:`~repro.workload.generator.WorkloadSpec` tuned to
exhibit one regime the paper discusses.  ``python -m repro.cli solve
--scenario hot-spot`` (or ``simulate``) uses them; tests pin their shapes.
"""

from __future__ import annotations

from repro.workload.generator import WorkloadSpec

#: Registry of named scenarios.
SCENARIOS: dict[str, WorkloadSpec] = {
    # Balanced federation: no skew — every fair policy nearly coincides.
    "uniform": WorkloadSpec(n_jobs=40, n_sites=8, theta=0.0, site_spread=3),
    # The paper's headline regime: workload concentrated on popular sites.
    "skewed": WorkloadSpec(n_jobs=40, n_sites=8, theta=1.5, site_spread=3),
    # One overwhelming hot site: PSMF starves whoever is pinned there.
    "hot-spot": WorkloadSpec(n_jobs=40, n_sites=8, theta=2.5, site_spread=2),
    # Elastic jobs (no demand caps): sharing incentive is trivially satisfied.
    "elastic": WorkloadSpec(n_jobs=40, n_sites=8, theta=1.2, site_spread=3, demand_scale=None),
    # Tightly demand-capped jobs: the regime where AMF can violate sharing
    # incentive and enhanced AMF earns its keep (T2).
    "capped": WorkloadSpec(n_jobs=40, n_sites=8, theta=1.5, site_spread=3, demand_scale=0.03),
    # Heterogeneous priorities: weighted max-min fairness.
    "weighted": WorkloadSpec(n_jobs=40, n_sites=8, theta=1.2, site_spread=3, weight_spread=3.0),
    # Many small sites: wide bipartite graphs stress the solver.
    "wide": WorkloadSpec(n_jobs=80, n_sites=32, theta=1.0, site_spread=4),
}


def get_scenario(name: str) -> WorkloadSpec:
    """Look up a scenario by name (raises ``KeyError`` listing choices)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choices: {sorted(SCENARIOS)}") from None
