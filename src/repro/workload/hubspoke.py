"""Hub-and-spoke instances: the structural home of sharing-incentive failures.

Every job needs the *hub* (a shared hot dataset); each job additionally has
a demand-capped *satellite* option (private data at a nearby site).  Under
plain AMF all jobs equalize at

    lam = (c_hub + sum_k d_k) / n,

so a job whose satellite cap ``d_i`` exceeds the mean cap ends up **below**
its equal-partition entitlement ``c_hub / n + d_i`` — it subsidizes the
others with its outside option.  This is exactly the paper's motivating
sharing-incentive violation, generalized; experiment T2 uses this family
(parameterized by cap heterogeneity) and enhanced AMF repairs every case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


@dataclass(frozen=True, slots=True)
class HubSpokeSpec:
    """Parameters of the hub-and-spoke family.

    ``satellite_capacity = None`` (default) sizes each satellite at
    ``2 * n_jobs * mean_cap`` so the equal-partition share of a satellite
    (``c_sat / n``) exceeds every demand cap — the job's entitlement there
    is its full cap ``d_i``, which is what makes violations possible.
    """

    n_jobs: int = 12
    hub_capacity: float = 1.0
    satellite_capacity: float | None = None
    mean_cap: float = 0.15  # mean satellite demand cap
    cap_spread: float = 1.0  # 0 = homogeneous caps (no violations); 1 = caps in [0, 2*mean]
    hub_work: float = 1.0

    def __post_init__(self) -> None:
        require(self.n_jobs >= 2, "need at least two jobs")
        require(self.hub_capacity > 0, "hub capacity must be positive")
        require(self.satellite_capacity is None or self.satellite_capacity > 0, "satellite capacity must be positive")
        require(self.mean_cap >= 0, "mean_cap must be non-negative")
        require(0.0 <= self.cap_spread <= 1.0, "cap_spread in [0, 1]")

    @property
    def effective_satellite_capacity(self) -> float:
        if self.satellite_capacity is not None:
            return self.satellite_capacity
        return max(2.0 * self.n_jobs * self.mean_cap, 1e-6)


def hub_and_spoke_cluster(spec: HubSpokeSpec, rng: np.random.Generator) -> Cluster:
    """Sample one hub-and-spoke instance.

    Sites: one hub plus one satellite per job (satellites are private, so
    their capacity never contends).  Job ``i`` has ``hub_work`` at the hub
    and satellite work with a demand cap drawn uniformly from
    ``mean_cap * [1 - cap_spread, 1 + cap_spread]``.
    """
    sites = [Site("hub", spec.hub_capacity)]
    jobs = []
    for i in range(spec.n_jobs):
        sat = f"sat{i}"
        sites.append(Site(sat, spec.effective_satellite_capacity))
        lo = spec.mean_cap * (1.0 - spec.cap_spread)
        hi = spec.mean_cap * (1.0 + spec.cap_spread)
        cap = float(rng.uniform(lo, hi)) if hi > lo else spec.mean_cap
        workload = {"hub": spec.hub_work}
        demand = {}
        if cap > 0.0:
            workload[sat] = max(cap, 1e-6)  # enough work to use the cap
            demand[sat] = cap
        jobs.append(Job(f"j{i}", workload, demand))
    return Cluster(sites, jobs)


def predicted_violators(spec: HubSpokeSpec, cluster: Cluster) -> list[str]:
    """Closed-form prediction of which jobs AMF leaves below entitlement.

    Satellites are private, so Pareto efficiency forces every job to its
    full satellite cap; the hub then water-fills *on top of the caps*:
    every job ends at ``A_i = max(lam, d_i)`` where ``lam`` solves
    ``sum_i max(lam - d_i, 0) = c_hub``.  Job ``i``'s entitlement is
    ``c_hub / n + min(d_i, c_sat / n)``; the predicted violators are the
    jobs whose entitlement exceeds their ``A_i``.  Used by tests to
    cross-check the actual flow-based solver against paper math.
    """
    caps = np.array(
        [job.demand_at(f"sat{k}", 0.0) if f"sat{k}" in job.workload else 0.0 for k, job in enumerate(cluster.jobs)]
    )
    n = cluster.n_jobs
    # solve sum_i max(lam - d_i, 0) = c_hub  (piecewise linear in lam)
    order = np.sort(caps)
    lam = None
    for k in range(n):
        # suppose exactly jobs with d < order[k] .. try lam in segment
        below = order[: k + 1]
        candidate = (spec.hub_capacity + below.sum()) / (k + 1)
        upper = order[k + 1] if k + 1 < n else np.inf
        if order[k] <= candidate <= upper:
            lam = candidate
            break
    if lam is None:  # pragma: no cover - the segments cover all cases
        lam = (spec.hub_capacity + caps.sum()) / n
    aggregates = np.maximum(lam, caps)
    sat_share = spec.effective_satellite_capacity / n
    entitlements = spec.hub_capacity / n + np.minimum(caps, sat_share)
    return [cluster.jobs[i].name for i in range(n) if entitlements[i] > aggregates[i] + 1e-9]
