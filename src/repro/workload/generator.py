"""Static batch instance generation with a controllable skew knob.

The generative model (reconstructed from the abstract's evaluation: "the
workload distribution of jobs among sites is highly skewed"):

1. Sites have a global Zipf(``theta``) popularity law — hot datacenters
   hold more data, so more jobs have more work there.
2. Each job touches ``site_spread`` sites, sampled without replacement
   proportionally to popularity.
3. The job's total work (lognormal with coefficient of variation
   ``work_cv``) is split across its sites proportionally to popularity,
   jittered by a Dirichlet factor so jobs are not clones.
4. Per-edge demand caps model runnable parallelism:
   ``d_ij = demand_scale * w_ij`` (tasks per unit work), or uncapped when
   ``demand_scale`` is ``None``.
5. Site capacities are uniform and chosen so aggregate demand over
   aggregate capacity equals ``contention`` (> 1 means the system is
   oversubscribed and fairness is binding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.workload.zipf import zipf_probabilities


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of the static batch generator (defaults follow DESIGN.md F1)."""

    n_jobs: int = 100
    n_sites: int = 20
    theta: float = 1.0  # site-popularity skew (0 = uniform)
    site_spread: int = 4  # sites per job (clipped to n_sites)
    mean_work: float = 100.0
    work_cv: float = 1.0  # lognormal coefficient of variation
    dirichlet_jitter: float = 2.0  # smaller = noisier per-job splits
    demand_scale: float | None = 0.05  # d_ij = demand_scale * w_ij; None = uncapped
    contention: float = 3.0  # aggregate demand / aggregate capacity
    weight_spread: float = 0.0  # 0 = unit weights; else weights in [1, 1+spread]

    def __post_init__(self) -> None:
        require(self.n_jobs > 0 and self.n_sites > 0, "need jobs and sites")
        require(self.site_spread >= 1, "jobs must touch at least one site")
        require(self.mean_work > 0 and self.work_cv >= 0, "invalid work distribution")
        require(self.contention > 0, "contention must be positive")
        require(self.demand_scale is None or self.demand_scale > 0, "demand_scale must be positive or None")


def _lognormal(rng: np.random.Generator, mean: float, cv: float, size: int) -> np.ndarray:
    """Lognormal samples with the requested mean and coefficient of variation."""
    if cv <= 0.0:
        return np.full(size, mean)
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean) - sigma2 / 2.0
    return rng.lognormal(mu, np.sqrt(sigma2), size)


def generate_jobs(spec: WorkloadSpec, rng: np.random.Generator) -> list[Job]:
    """Sample the jobs of a batch instance (arrival = 0 for all)."""
    m = spec.n_sites
    popularity = zipf_probabilities(m, spec.theta)
    spread = min(spec.site_spread, m)
    totals = _lognormal(rng, spec.mean_work, spec.work_cv, spec.n_jobs)
    jobs: list[Job] = []
    for i in range(spec.n_jobs):
        chosen = rng.choice(m, size=spread, replace=False, p=popularity)
        base = popularity[chosen]
        jitter = rng.dirichlet(np.full(spread, spec.dirichlet_jitter))
        split = base * jitter
        split = split / split.sum()
        workload = {}
        demand = {}
        for k, j in enumerate(chosen):
            w = float(totals[i] * split[k])
            if w <= 0.0:
                continue
            workload[f"s{j}"] = w
            if spec.demand_scale is not None:
                demand[f"s{j}"] = spec.demand_scale * w
        if not workload:  # pragma: no cover - split always has positive mass
            workload[f"s{chosen[0]}"] = float(totals[i])
        weight = 1.0 + (float(rng.uniform(0.0, spec.weight_spread)) if spec.weight_spread > 0 else 0.0)
        jobs.append(Job(f"j{i}", workload, demand, weight=weight))
    return jobs


def sites_for(spec: WorkloadSpec, jobs: list[Job], site_capacity: float | None = None) -> list[Site]:
    """Uniform site capacities realizing ``spec.contention`` for ``jobs``.

    When ``demand_scale`` is ``None`` there is no finite aggregate demand;
    capacity then defaults to total work / (horizon of 10 time units).
    """
    if site_capacity is None:
        if spec.demand_scale is not None:
            total_demand = sum(sum(j.demand.values()) for j in jobs)
            site_capacity = total_demand / (spec.contention * spec.n_sites)
        else:
            total_work = sum(j.total_work for j in jobs)
            site_capacity = total_work / (10.0 * spec.n_sites)
    require(site_capacity > 0, "degenerate instance: zero capacity")
    return [Site(f"s{j}", float(site_capacity)) for j in range(spec.n_sites)]


def generate_cluster(spec: WorkloadSpec, rng: np.random.Generator) -> Cluster:
    """Sample a full batch instance as a :class:`~repro.model.cluster.Cluster`."""
    jobs = generate_jobs(spec, rng)
    return Cluster(sites_for(spec, jobs), jobs)


def breakpoint_ladder(
    k: int, *, site_spread: int = 3, jobs_per_class: int = 2, classes: int = 2
) -> Cluster:
    """A deterministic instance whose leximin profile has ``k`` distinct levels
    (exactly ``k`` whenever ``k`` is a positive multiple of ``classes``).

    Built as ``k // classes`` disconnected *rungs*: rung ``r`` is a clique of
    ``site_spread`` sites with capacity ``8 * (1 + 0.43 r)`` shared by
    ``classes`` weight classes of ``jobs_per_class`` jobs each.  Capacities
    and weights are chosen incommensurate, so every (rung, class) pair
    water-fills to a distinct fair share — the number of distinct leximin
    breakpoints equals ``k`` by construction.  This isolates the
    breakpoint-count axis that separates one-shot GGT sweeps from per-level
    probing (``benchmarks/bench_pr8.py``): classic Zipf instances
    (:func:`generate_cluster`) rarely exceed a handful of distinct levels.
    """
    require(k >= 1, "need at least one breakpoint")
    require(classes >= 1 and jobs_per_class >= 1 and site_spread >= 1, "degenerate ladder shape")
    rungs = max(1, k // classes)
    sites: list[Site] = []
    jobs: list[Job] = []
    for r in range(rungs):
        cap = 8.0 * (1.0 + 0.43 * r)
        rung_sites = [f"s{r}_{s}" for s in range(site_spread)]
        sites.extend(Site(name, cap) for name in rung_sites)
        for c in range(classes):
            weight = 1.0 + 0.37 * c
            for j in range(jobs_per_class):
                jobs.append(
                    Job(
                        f"j{r}_{c}_{j}",
                        workload={name: 1.0 for name in rung_sites},
                        demand={name: cap for name in rung_sites},
                        weight=weight,
                    )
                )
    return Cluster(tuple(sites), tuple(jobs))
