"""Trace-like workload generator (substitute for proprietary cluster traces).

Papers in this area often calibrate against production traces (Google,
Alibaba); none are shippable here, so this module synthesizes workloads
with the trace features that matter for fairness experiments:

* **heavy-tailed job sizes** — Pareto-distributed total work (a few
  elephants, many mice),
* **diurnal arrival modulation** — a sinusoidal intensity over the horizon,
* **locality classes** — a mix of single-site jobs, regional jobs (2-3
  nearby sites) and global jobs (work everywhere), with class shares
  configurable.

DESIGN.md records this substitution: the synthetic trace exercises exactly
the same code paths a production trace would (skewed spatial distribution,
bursty arrivals, mixed job shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import require
from repro.model.job import Job
from repro.model.site import Site
from repro.workload.zipf import zipf_probabilities


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """Parameters of the synthetic trace."""

    n_jobs: int = 200
    n_sites: int = 12
    horizon: float = 100.0
    theta: float = 1.0  # spatial skew
    pareto_shape: float = 1.8  # job-size tail (smaller = heavier)
    mean_work: float = 50.0
    diurnal_amplitude: float = 0.5  # 0 = flat arrivals, <1
    class_shares: tuple[float, float, float] = (0.4, 0.4, 0.2)  # single/regional/global
    demand_scale: float = 0.1
    site_capacity: float = 10.0
    seed_names: str = "t"

    def __post_init__(self) -> None:
        require(self.n_jobs > 0 and self.n_sites > 0, "need jobs and sites")
        require(self.pareto_shape > 1.0, "pareto_shape must exceed 1 for a finite mean")
        require(0.0 <= self.diurnal_amplitude < 1.0, "diurnal amplitude in [0, 1)")
        require(abs(sum(self.class_shares) - 1.0) < 1e-9, "class shares must sum to 1")


def _pareto_work(rng: np.random.Generator, spec: TraceSpec, size: int) -> np.ndarray:
    """Pareto sizes normalized to the requested mean."""
    a = spec.pareto_shape
    raw = rng.pareto(a, size) + 1.0  # mean a/(a-1)
    return raw * (spec.mean_work * (a - 1.0) / a)


def _diurnal_times(rng: np.random.Generator, spec: TraceSpec) -> np.ndarray:
    """Arrival times with sinusoidal intensity via thinning-free inversion sampling."""
    u = rng.uniform(0.0, 1.0, spec.n_jobs)
    # CDF of intensity 1 + A*sin(2*pi*t/H) over [0, H], normalized:
    # F(t) = t/H - (A*H/(2*pi*H)) * (cos(2*pi*t/H) - 1) ... invert numerically.
    grid = np.linspace(0.0, spec.horizon, 4096)
    intensity = 1.0 + spec.diurnal_amplitude * np.sin(2.0 * np.pi * grid / spec.horizon)
    cdf = np.cumsum(intensity)
    cdf = cdf / cdf[-1]
    times = np.interp(u, cdf, grid)
    return np.sort(times)


def generate_trace_jobs(spec: TraceSpec, rng: np.random.Generator) -> tuple[list[Site], list[Job]]:
    """Sample the synthetic trace: sites plus arrival-stamped mixed-class jobs."""
    m = spec.n_sites
    popularity = zipf_probabilities(m, spec.theta)
    sizes = _pareto_work(rng, spec, spec.n_jobs)
    times = _diurnal_times(rng, spec)
    shares = np.asarray(spec.class_shares)
    classes = rng.choice(3, size=spec.n_jobs, p=shares)
    jobs: list[Job] = []
    for i in range(spec.n_jobs):
        if classes[i] == 0:  # single-site
            spread = 1
        elif classes[i] == 1:  # regional
            spread = min(m, int(rng.integers(2, 4)))
        else:  # global
            spread = m
        chosen = rng.choice(m, size=spread, replace=False, p=popularity)
        split = popularity[chosen] * rng.dirichlet(np.full(spread, 2.0))
        split = split / split.sum()
        workload = {f"s{j}": float(sizes[i] * frac) for j, frac in zip(chosen, split) if sizes[i] * frac > 0}
        demand = {s: spec.demand_scale * w for s, w in workload.items()}
        jobs.append(Job(f"{spec.seed_names}{i}", workload, demand, arrival=float(times[i])))
    sites = [Site(f"s{j}", spec.site_capacity) for j in range(m)]
    return sites, jobs
