"""Synthetic workload generation.

The paper's experiments sweep the *skewness of the workload distribution of
jobs among sites* — the more a job's work concentrates on a few (popular)
sites, the more AMF's cross-site compensation matters.  This package
provides:

* :mod:`~repro.workload.zipf` — bounded Zipf site-popularity laws (the
  skew knob, ``theta = 0`` uniform, larger = more skewed),
* :mod:`~repro.workload.generator` — static batch instances
  (:class:`~repro.workload.generator.WorkloadSpec`) with contention control,
* :mod:`~repro.workload.arrivals` — Poisson arrival processes over the same
  spatial law, for the dynamic experiments (load sweep F7),
* :mod:`~repro.workload.traces` — a trace-like generator with heavy-tailed
  job sizes and diurnal modulation, substituting for proprietary cluster
  traces (DESIGN.md, substitution note),
* :mod:`~repro.workload.failures` — seeded Poisson MTBF/MTTR site-failure
  traces for the fault-tolerance experiments (X8, docs/robustness.md).
"""

from repro.workload.zipf import zipf_probabilities, zipf_sample
from repro.workload.generator import (
    WorkloadSpec,
    breakpoint_ladder,
    generate_cluster,
    generate_jobs,
)
from repro.workload.arrivals import ArrivalSpec, generate_arrival_jobs
from repro.workload.traces import TraceSpec, generate_trace_jobs
from repro.workload.scenarios import SCENARIOS, get_scenario
from repro.workload.failures import FailureSpec, generate_failure_trace

__all__ = [
    "zipf_probabilities",
    "zipf_sample",
    "WorkloadSpec",
    "breakpoint_ladder",
    "generate_cluster",
    "generate_jobs",
    "ArrivalSpec",
    "generate_arrival_jobs",
    "TraceSpec",
    "generate_trace_jobs",
    "SCENARIOS",
    "get_scenario",
    "FailureSpec",
    "generate_failure_trace",
]
