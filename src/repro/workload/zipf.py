"""Bounded Zipf laws over sites — the skew knob of every experiment.

``theta = 0`` is the uniform distribution; as ``theta`` grows, workload
concentrates on the most popular sites.  ``theta in [0, 2]`` is the sweep
range used by the balance/JCT experiments (F1-F4).
"""

from __future__ import annotations

import numpy as np

from repro._util import require


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Probabilities ``p_k ∝ 1 / (k+1)^theta`` over ``n`` ranks.

    ``theta = 0`` gives the uniform law; ``theta`` may be any non-negative
    float (not restricted to > 1, unlike :func:`numpy.random.zipf`, because
    the support is bounded).
    """
    require(n > 0, "need at least one rank")
    require(theta >= 0.0, f"theta must be non-negative, got {theta}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-theta
    return weights / weights.sum()


def zipf_sample(rng: np.random.Generator, n: int, theta: float, size: int) -> np.ndarray:
    """Sample ``size`` ranks in ``[0, n)`` from the bounded Zipf law."""
    return rng.choice(n, size=size, p=zipf_probabilities(n, theta))


def permuted_zipf(rng: np.random.Generator, n: int, theta: float) -> np.ndarray:
    """Zipf probabilities with ranks randomly assigned to indices.

    Used when each *job* should have its own popular sites rather than all
    jobs piling onto site 0.
    """
    p = zipf_probabilities(n, theta)
    return p[rng.permutation(n)]
