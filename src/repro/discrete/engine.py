"""Event-driven slot scheduler tracking a fluid fairness policy.

The engine keeps, per site, an integral number of slots.  At every event
(arrival or task completion) it:

1. builds the fluid snapshot of remaining work (task counts become demand
   caps) and asks the configured policy for fluid shares ``a_ij``;
2. converts each site's shares into **integral slot targets** by
   largest-remainder rounding (floor everything, hand leftover slots to
   the largest fractional remainders);
3. launches pending tasks non-preemptively: first up to each job's target,
   then — work-conserving — backfills remaining free slots in
   largest-deficit-first order.

Running tasks are never killed, so targets act on the margin; as tasks
finish, assignments drift toward the policy's shares.  With shrinking
task durations the drift vanishes, which is exactly the fluid-convergence
claim experiment X6 measures.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import require
from repro.core.policies import PolicyFn, get_policy
from repro.discrete.tasks import DiscreteJob
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site
from repro.sim.metrics import JobRecord, SimulationResult


@dataclass(slots=True)
class _JobState:
    job: DiscreteJob
    pending: dict[str, int]  # site -> tasks not yet started
    running: dict[str, int]  # site -> tasks currently on slots
    record: JobRecord

    def done(self) -> bool:
        return not self.pending and not any(self.running.values())


class DiscreteSimulator:
    """Simulate task-level execution of ``jobs`` on integer-slot ``sites``.

    Parameters
    ----------
    sites:
        Site capacities are interpreted as integral slot counts
        (``floor``-ed; must be >= 1 after flooring).
    jobs:
        :class:`~repro.discrete.tasks.DiscreteJob` instances.
    policy:
        Fluid policy (registry name or callable) used for targets.
    """

    def __init__(self, sites: Sequence[Site], jobs: Sequence[DiscreteJob], policy: str | PolicyFn):
        self.sites = tuple(sites)
        self.slot_counts = {s.name: int(s.capacity) for s in self.sites}
        for name, slots in self.slot_counts.items():
            require(slots >= 1, f"site {name!r}: needs at least one whole slot (capacity >= 1)")
        self.jobs = tuple(sorted(jobs, key=lambda j: (j.arrival, j.name)))
        if isinstance(policy, str):
            self.policy_name = policy
            self.policy: PolicyFn = get_policy(policy)
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self.policy = policy

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        result = SimulationResult(
            policy=f"discrete:{self.policy_name}",
            total_capacity=float(sum(self.slot_counts.values())),
        )
        active: dict[str, _JobState] = {}
        free = dict(self.slot_counts)
        # (finish_time, seq, job_name, site)
        completions: list[tuple[float, int, str, str]] = []
        seq = itertools.count()
        pending_arrivals = list(self.jobs)
        next_arrival = 0
        t = 0.0

        def isolated_time(job: DiscreteJob) -> float:
            worst = 0.0
            for site, (count, duration) in job.tasks.items():
                slots = self.slot_counts[site]
                waves = int(np.ceil(count / slots))
                worst = max(worst, waves * duration)
            return worst

        def admit(now: float) -> None:
            nonlocal next_arrival
            while next_arrival < len(pending_arrivals) and pending_arrivals[next_arrival].arrival <= now + 1e-15:
                job = pending_arrivals[next_arrival]
                next_arrival += 1
                rec = JobRecord(
                    name=job.name,
                    arrival=job.arrival,
                    completion=np.inf,
                    total_work=job.total_work,
                    isolated_time=isolated_time(job),
                )
                result.records.append(rec)
                active[job.name] = _JobState(
                    job,
                    pending={s: c for s, (c, _) in job.tasks.items()},
                    running={s: 0 for s in job.tasks},
                    record=rec,
                )
                result.n_events += 1

        def launch_tasks(now: float) -> None:
            """One scheduling pass: fluid shares -> integral targets -> launches."""
            states = [st for st in active.values() if any(st.pending.values())]
            if not states or all(v == 0 for v in free.values()):
                return
            snapshot, names = self._snapshot(active)
            if snapshot is None:
                return
            alloc = self.policy(snapshot)
            result.n_policy_solves += 1
            site_index = {s.name: j for j, s in enumerate(snapshot.sites)}
            for site, slots in self.slot_counts.items():
                j = site_index[site]
                shares = {name: float(alloc.matrix[k, j]) for k, name in enumerate(names)}
                targets = _largest_remainder(shares, slots)
                # phase 1: honour targets on the margin (running counts included)
                order = sorted(targets, key=lambda n: targets[n] - active[n].running.get(site, 0), reverse=True)
                for name in order:
                    st = active[name]
                    want = targets[name] - st.running.get(site, 0)
                    self._start(st, site, min(want, st.pending.get(site, 0)), free, completions, seq, now)
                # phase 2: work-conserving backfill, most pending first
                if free[site] > 0:
                    backlog = sorted(
                        (st for st in active.values() if st.pending.get(site, 0) > 0),
                        key=lambda st: st.pending[site],
                        reverse=True,
                    )
                    for st in backlog:
                        if free[site] == 0:
                            break
                        self._start(st, site, st.pending[site], free, completions, seq, now)

        admit(t)
        launch_tasks(t)
        guard = 0
        max_events = 20 * sum(j.total_tasks for j in self.jobs) + 10 * len(self.jobs) + 100
        while completions or next_arrival < len(pending_arrivals):
            guard += 1
            require(guard <= max_events, "discrete event budget exceeded")
            t_arrival = pending_arrivals[next_arrival].arrival if next_arrival < len(pending_arrivals) else np.inf
            t_complete = completions[0][0] if completions else np.inf
            if t_arrival < t_complete:
                t = t_arrival
                admit(t)
            else:
                t, _, name, site = heapq.heappop(completions)
                st = active[name]
                st.running[site] -= 1
                free[site] += 1
                result.n_events += 1
                if st.done():
                    st.record.completion = t
                    del active[name]
            # drain all simultaneous completions before rescheduling
            while completions and completions[0][0] <= t + 1e-12:
                _, _, name2, site2 = heapq.heappop(completions)
                st2 = active[name2]
                st2.running[site2] -= 1
                free[site2] += 1
                result.n_events += 1
                if st2.done():
                    st2.record.completion = t
                    del active[name2]
            launch_tasks(t)

        result.horizon = t
        result.utilization_integral = sum(r.total_work for r in result.records if r.finished)
        return result

    # ------------------------------------------------------------------
    def _start(self, st: _JobState, site: str, count: int, free, completions, seq, now: float) -> None:
        count = min(count, free[site], st.pending.get(site, 0))
        if count <= 0:
            return
        duration = st.job.tasks[site][1]
        for _ in range(count):
            heapq.heappush(completions, (now + duration, next(seq), st.job.name, site))
        st.pending[site] -= count
        if st.pending[site] == 0:
            del st.pending[site]
        st.running[site] = st.running.get(site, 0) + count
        free[site] -= count

    def _snapshot(self, active: dict[str, _JobState]) -> tuple[Cluster | None, list[str]]:
        """Fluid cluster of *remaining* work (pending + running tasks)."""
        names = sorted(active)
        jobs = []
        for name in names:
            st = active[name]
            workload = {}
            demand = {}
            for site, (count, duration) in st.job.tasks.items():
                remaining = st.pending.get(site, 0) + st.running.get(site, 0)
                if remaining > 0:
                    workload[site] = remaining * duration
                    demand[site] = float(remaining)
            if workload:
                jobs.append(Job(name, workload, demand, weight=st.job.weight))
        if not jobs:
            return None, []
        return Cluster(self.sites, jobs), [j.name for j in jobs]


def _largest_remainder(shares: dict[str, float], slots: int) -> dict[str, int]:
    """Round fluid shares to integers summing to at most ``slots``.

    Floors every share, then hands remaining slots to the largest
    fractional remainders (ties by name for determinism).
    """
    floors = {n: int(np.floor(v + 1e-12)) for n, v in shares.items()}
    used = sum(floors.values())
    leftover = max(0, slots - used)
    remainders = sorted(
        shares,
        key=lambda n: (shares[n] - floors[n], n),
        reverse=True,
    )
    out = dict(floors)
    for n in remainders:
        if leftover == 0:
            break
        if shares[n] - floors[n] > 1e-12:
            out[n] += 1
            leftover -= 1
    return out


def simulate_discrete(
    sites: Sequence[Site],
    jobs: Sequence[DiscreteJob],
    policy: str | PolicyFn,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`DiscreteSimulator`."""
    return DiscreteSimulator(sites, jobs, policy).run()
