"""Discrete task-level scheduling: the slot-based view of the same system.

The fluid model of :mod:`repro.sim` divides infinitely-divisible rates; a
real cluster manager (Mesos/YARN-style) assigns integral *slots* to
*tasks* with durations, non-preemptively.  This package implements that
substrate:

* :mod:`repro.discrete.tasks` — task-level jobs and the
  work-preserving discretization of fluid jobs at a chosen granularity,
* :mod:`repro.discrete.engine` — an event-driven slot scheduler that
  tracks the fairness policy's fluid shares with integral assignments
  (largest-remainder rounding + deficit-ordered backfill).

Experiment X6 sweeps the task granularity and shows the discrete JCTs
converging to the fluid ones — the evidence that the paper's fluid
evaluation predicts slot-based reality.
"""

from repro.discrete.tasks import DiscreteJob, discretize_jobs
from repro.discrete.engine import DiscreteSimulator, simulate_discrete

__all__ = ["DiscreteJob", "discretize_jobs", "DiscreteSimulator", "simulate_discrete"]
