"""Task-level job descriptions and fluid-to-discrete conversion."""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence

from repro._util import require
from repro.model.job import Job


@dataclass(frozen=True)
class DiscreteJob:
    """A job made of site-pinned tasks.

    ``tasks[site] = (count, duration)``: ``count`` identical tasks, each
    occupying one slot at ``site`` for ``duration`` time units,
    non-preemptively.  The site-``j`` work equals ``count * duration``
    slot-time, which is what the fluid model calls ``w_ij``.
    """

    name: str
    tasks: Mapping[str, tuple[int, float]]
    weight: float = 1.0
    arrival: float = 0.0

    def __post_init__(self) -> None:
        require(bool(self.name), "job name must be non-empty")
        require(self.weight > 0.0, "weight must be positive")
        require(self.arrival >= 0.0, "arrival must be non-negative")
        cleaned: dict[str, tuple[int, float]] = {}
        for site, (count, duration) in self.tasks.items():
            require(count >= 0 and count == int(count), f"task count at {site!r} must be a non-negative int")
            require(duration > 0.0 or count == 0, f"task duration at {site!r} must be positive")
            if count > 0:
                cleaned[site] = (int(count), float(duration))
        require(bool(cleaned), f"job {self.name!r} needs at least one task")
        object.__setattr__(self, "tasks", MappingProxyType(cleaned))

    @property
    def total_tasks(self) -> int:
        return sum(c for c, _ in self.tasks.values())

    @property
    def total_work(self) -> float:
        return sum(c * d for c, d in self.tasks.values())

    def work_at(self, site: str) -> float:
        count, duration = self.tasks.get(site, (0, 1.0))
        return count * duration

    def fluid_job(self) -> Job:
        """The fluid equivalent: workload = slot-time, demand cap = task count.

        A job can never run more simultaneous tasks at a site than it has
        tasks there, so the task count *is* the fluid demand cap.
        """
        return Job(
            name=self.name,
            workload={s: c * d for s, (c, d) in self.tasks.items()},
            demand={s: float(c) for s, (c, _) in self.tasks.items()},
            weight=self.weight,
            arrival=self.arrival,
        )


def discretize_jobs(jobs: Sequence[Job], granularity: float) -> list[DiscreteJob]:
    """Work-preserving discretization of fluid jobs.

    Each fluid workload ``w_ij`` becomes ``ceil(w_ij * granularity)`` tasks
    of duration ``w_ij / count`` (total slot-time preserved exactly).
    Larger ``granularity`` means more, shorter tasks — and discrete
    behaviour converging to the fluid model (experiment X6).

    In the discrete world a job's parallelism limit at a site *is* its
    remaining task count there (each task needs one slot), so fluid demand
    caps are not carried over separately; the round-trip
    ``DiscreteJob.fluid_job()`` re-derives them from the task counts.
    """
    require(granularity > 0.0, "granularity must be positive")
    out = []
    for job in jobs:
        tasks = {}
        for site, work in job.workload.items():
            count = max(1, math.ceil(work * granularity))
            tasks[site] = (count, work / count)
        out.append(DiscreteJob(job.name, tasks, weight=job.weight, arrival=job.arrival))
    return out
