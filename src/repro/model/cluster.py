"""Cluster: an immutable snapshot of jobs and sites, with array views.

All solvers in :mod:`repro.core` consume a :class:`Cluster` and operate on
its dense NumPy views (capacities, workload matrix, effective demand caps).
The views are computed once and cached — the guides' "views, not copies"
advice applied at the model boundary.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro._util import as_float_array, as_float_matrix, nonneg, require
from repro.model.job import Job
from repro.model.resources import SLOTS, UnknownResourceError
from repro.model.site import Site


class Cluster:
    """An allocation instance: ``m`` sites and ``n`` jobs with pinned work.

    The class is intentionally immutable: every mutation helper
    (:meth:`without_job`, :meth:`with_job`, :meth:`replace_job`) returns a new
    instance, which keeps the strategy-proofness / sharing-incentive probes
    honest (they compare allocations across *independent* instances).
    """

    def __init__(self, sites: Sequence[Site], jobs: Sequence[Job]):
        sites = tuple(sites)
        jobs = tuple(jobs)
        require(len(sites) > 0, "cluster needs at least one site")
        site_names = [s.name for s in sites]
        require(len(set(site_names)) == len(site_names), "site names must be unique")
        job_names = [j.name for j in jobs]
        require(len(set(job_names)) == len(job_names), "job names must be unique")
        known = set(site_names)
        offered: set[str] = set()
        for site in sites:
            offered.update(site.resource_vector)
        for job in jobs:
            unknown = set(job.workload) - known
            require(not unknown, f"job {job.name!r} references unknown sites {sorted(unknown)}")
            missing = set(job.resource_vector) - offered
            if missing:
                raise UnknownResourceError(
                    f"job {job.name!r} demands unknown resources {sorted(missing)} "
                    f"(cluster offers {sorted(offered)})"
                )
        self._sites = sites
        self._jobs = jobs
        self._site_index = {name: k for k, name in enumerate(site_names)}
        self._job_index = {name: k for k, name in enumerate(job_names)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def sites(self) -> tuple[Site, ...]:
        return self._sites

    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._jobs

    @property
    def n_sites(self) -> int:
        return len(self._sites)

    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    def site_index(self, name: str) -> int:
        return self._site_index[name]

    def job_index(self, name: str) -> int:
        return self._job_index[name]

    def job(self, name: str) -> Job:
        return self._jobs[self._job_index[name]]

    def site(self, name: str) -> Site:
        return self._sites[self._site_index[name]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(n_jobs={self.n_jobs}, n_sites={self.n_sites}, total_capacity={self.total_capacity:g})"

    # ------------------------------------------------------------------
    # Dense views (cached)
    # ------------------------------------------------------------------
    @cached_property
    def capacities(self) -> np.ndarray:
        """``(m,)`` site capacities."""
        arr = np.array([s.capacity for s in self._sites], dtype=float)
        arr.flags.writeable = False
        return arr

    @cached_property
    def weights(self) -> np.ndarray:
        """``(n,)`` fairness weights."""
        arr = np.array([j.weight for j in self._jobs], dtype=float)
        arr.flags.writeable = False
        return arr

    @cached_property
    def workloads(self) -> np.ndarray:
        """``(n, m)`` workload matrix ``W``; ``W[i, j] > 0`` iff job ``i`` has work at site ``j``."""
        mat = np.zeros((self.n_jobs, self.n_sites), dtype=float)
        for i, job in enumerate(self._jobs):
            for site, work in job.workload.items():
                mat[i, self._site_index[site]] = work
        mat.flags.writeable = False
        return mat

    @cached_property
    def support(self) -> np.ndarray:
        """``(n, m)`` boolean support mask (where each job may receive resource)."""
        mask = self.workloads > 0.0
        mask.flags.writeable = False
        return mask

    @cached_property
    def demand_caps(self) -> np.ndarray:
        """``(n, m)`` *effective* per-edge demand caps.

        ``inf``/missing caps are clipped to the rate the site could sustain
        if the job ran alone there (a job can never usefully hold more than
        the whole site; for a resource vector that is ``min_r c_jr / r_ir``
        over the resources the job consumes), and entries outside the
        support are 0.  Solvers therefore only ever need this matrix.
        """
        caps = np.zeros((self.n_jobs, self.n_sites), dtype=float)
        mr = self.is_multiresource
        for i, job in enumerate(self._jobs):
            vec = job.resource_vector if mr else None
            for site in job.workload:
                j = self._site_index[site]
                if mr:
                    site_vec = self._sites[j].resource_vector
                    alone = min(site_vec.get(res, 0.0) / amount for res, amount in vec.items())
                else:
                    alone = self._sites[j].capacity
                caps[i, j] = min(job.demand_at(site), alone)
        caps.flags.writeable = False
        return caps

    # ------------------------------------------------------------------
    # Resource-vector views
    # ------------------------------------------------------------------
    @cached_property
    def is_multiresource(self) -> bool:
        """True when any site or job declares a non-canonical resource vector."""
        return any(s.is_multiresource for s in self._sites) or any(j.is_multiresource for j in self._jobs)

    @cached_property
    def resource_names(self) -> tuple[str, ...]:
        """Sorted names of every resource offered by some site."""
        names: set[str] = set()
        for site in self._sites:
            names.update(site.resource_vector)
        return tuple(sorted(names))

    @cached_property
    def site_resource_matrix(self) -> np.ndarray:
        """``(m, R)`` site capacities per resource (0 where not offered)."""
        names = self.resource_names
        mat = np.zeros((self.n_sites, len(names)), dtype=float)
        for j, site in enumerate(self._sites):
            vec = site.resource_vector
            for r, res in enumerate(names):
                mat[j, r] = vec.get(res, 0.0)
        mat.flags.writeable = False
        return mat

    @cached_property
    def job_resource_matrix(self) -> np.ndarray:
        """``(n, R)`` per-task resource demands (0 where not consumed)."""
        names = self.resource_names
        mat = np.zeros((self.n_jobs, len(names)), dtype=float)
        for i, job in enumerate(self._jobs):
            vec = job.resource_vector
            for r, res in enumerate(names):
                mat[i, r] = vec.get(res, 0.0)
        mat.flags.writeable = False
        return mat

    @cached_property
    def resource_totals(self) -> dict[str, float]:
        """Federation-wide capacity of each resource (dominant-share denominators)."""
        totals = self.site_resource_matrix.sum(axis=0)
        return {res: float(totals[r]) for r, res in enumerate(self.resource_names)}

    def dominant_factor(self, resource_totals: Mapping[str, float] | None = None) -> np.ndarray:
        """``(n,)`` per-unit-rate dominant-share factor of each job.

        ``factor[i] = max_r r_ir / C_r`` with federation-wide totals ``C_r``:
        a job running at aggregate rate ``A_i`` holds dominant share
        ``A_i * factor[i]``.  Pass ``resource_totals`` to pin the global
        denominators when solving a sub-cluster (a shard) of a federation.
        """
        names = self.resource_names
        if resource_totals is None:
            totals = {res: self.resource_totals[res] for res in names}
        else:
            totals = {res: float(resource_totals.get(res, self.resource_totals[res])) for res in names}
        denom = np.array([max(totals[res], 1e-300) for res in names], dtype=float)
        if not names:
            return np.ones(self.n_jobs, dtype=float)
        factor = (self.job_resource_matrix / denom).max(axis=1)
        return factor

    @cached_property
    def aggregate_demand(self) -> np.ndarray:
        """``(n,)`` per-job aggregate demand cap (sum of effective edge caps)."""
        arr = self.demand_caps.sum(axis=1)
        arr.flags.writeable = False
        return arr

    @property
    def total_capacity(self) -> float:
        return float(self.capacities.sum())

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @cached_property
    def _fingerprint(self) -> str:
        h = hashlib.sha256()
        for site in self._sites:
            h.update(f"S|{site.name}|{site.capacity.hex()}\n".encode())
            # Vector capacities get extra lines; canonical scalar sites emit
            # none, keeping pre-vector fingerprints byte-for-byte stable.
            if site.resources is not None:
                for res, amount in site.resources:
                    h.update(f"R|{site.name}|{res}|{amount.hex()}\n".encode())
        for job in self._jobs:
            h.update(f"J|{job.name}|{job.weight.hex()}\n".encode())
            for site, work in sorted(job.workload.items()):
                h.update(f"w|{site}|{work.hex()}\n".encode())
            for site, rate in sorted(job.demand.items()):
                h.update(f"d|{site}|{rate.hex()}\n".encode())
            for res, amount in sorted(job.resources.items()):
                h.update(f"r|{res}|{amount.hex()}\n".encode())
        return h.hexdigest()

    def fingerprint(self) -> str:
        """Stable hex digest of everything that determines an allocation.

        Covers site order/names/capacities and job order/names/weights/
        workloads/demand caps — exactly the inputs every solver consumes.
        Fields that never affect allocation (site tags, job arrival times)
        are excluded, so a cluster rebuilt mid-simulation from the same
        remaining work hashes identically.  Job/site *order* is included
        because the allocation matrix layout depends on it.

        The digest is the cache key of the online allocation service
        (:mod:`repro.service`): equal fingerprints guarantee equal solver
        inputs, so a cached allocation matrix can be replayed verbatim.
        """
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def without_job(self, name: str) -> "Cluster":
        """New cluster with job ``name`` removed."""
        require(name in self._job_index, f"unknown job {name!r}")
        return Cluster(self._sites, tuple(j for j in self._jobs if j.name != name))

    def with_job(self, job: Job) -> "Cluster":
        """New cluster with ``job`` appended."""
        return Cluster(self._sites, (*self._jobs, job))

    def replace_job(self, job: Job) -> "Cluster":
        """New cluster where the job with the same name is replaced by ``job``."""
        require(job.name in self._job_index, f"unknown job {job.name!r}")
        return Cluster(self._sites, tuple(job if j.name == job.name else j for j in self._jobs))

    def restricted_to_jobs(self, names: Iterable[str]) -> "Cluster":
        """New cluster keeping only the named jobs (order preserved)."""
        keep = set(names)
        unknown = keep - set(self._job_index)
        require(not unknown, f"unknown jobs {sorted(unknown)}")
        return Cluster(self._sites, tuple(j for j in self._jobs if j.name in keep))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_matrices(
        cls,
        capacities: Sequence[float] | np.ndarray,
        workloads,
        demand_caps=None,
        weights: Sequence[float] | np.ndarray | None = None,
        site_names: Sequence[str] | None = None,
        job_names: Sequence[str] | None = None,
    ) -> "Cluster":
        """Build a cluster from dense arrays.

        Parameters
        ----------
        capacities:
            ``(m,)`` positive site capacities.
        workloads:
            ``(n, m)`` non-negative workload matrix; each row must have at
            least one positive entry.
        demand_caps:
            Optional ``(n, m)`` per-edge rate caps.  ``inf`` (or omitted)
            means "capped only by the site".  Caps outside the workload
            support are ignored.
        weights:
            Optional ``(n,)`` fairness weights (default all-ones).
        site_names / job_names:
            Optional identifiers (defaults ``s0..`` / ``j0..``).
        """
        cap = nonneg(as_float_array(capacities, "capacities"), "capacities")
        W = nonneg(as_float_matrix(workloads, "workloads"), "workloads")
        n, m = W.shape
        require(cap.shape == (m,), f"capacities shape {cap.shape} incompatible with workloads {W.shape}")
        if site_names is None:
            site_names = [f"s{j}" for j in range(m)]
        if job_names is None:
            job_names = [f"j{i}" for i in range(n)]
        require(len(site_names) == m, "site_names length mismatch")
        require(len(job_names) == n, "job_names length mismatch")
        if weights is None:
            wts = np.ones(n)
        else:
            wts = as_float_array(weights, "weights")
            require(wts.shape == (n,), "weights length mismatch")
        if demand_caps is not None:
            D = np.asarray(demand_caps, dtype=float)
            require(D.shape == (n, m), f"demand_caps shape {D.shape} != workloads shape {W.shape}")
            require(not bool(np.isnan(D).any()), "demand_caps must not contain NaN")
            require(float(np.where(np.isinf(D), 0.0, D).min(initial=0.0)) >= 0.0, "demand_caps must be non-negative")

        sites = [Site(site_names[j], float(cap[j])) for j in range(m)]
        jobs = []
        for i in range(n):
            workload: dict[str, float] = {}
            demand: dict[str, float] = {}
            for j in range(m):
                if W[i, j] > 0.0:
                    workload[site_names[j]] = float(W[i, j])
                    if demand_caps is not None and np.isfinite(D[i, j]):
                        demand[site_names[j]] = float(D[i, j])
            jobs.append(Job(job_names[i], workload, demand, weight=float(wts[i])))
        return cls(sites, jobs)

    @classmethod
    def uniform(cls, n_jobs: int, n_sites: int, capacity: float = 1.0, work: float = 1.0) -> "Cluster":
        """Convenience: every job has equal work at every site (no caps)."""
        W = np.full((n_jobs, n_sites), work, dtype=float)
        return cls.from_matrices(np.full(n_sites, capacity), W)

    # ------------------------------------------------------------------
    # Reference shares
    # ------------------------------------------------------------------
    def equal_partition_entitlements(self) -> np.ndarray:
        """``(n,)`` equal-partition entitlements ``E_i`` (sharing-incentive bar).

        ``E_i = sum over the job's support of min(w_i / sum_k(w_k) * c_j, d_ij)``:
        each site is split among **all** ``n`` jobs in proportion to their
        fairness weights, and a job can bank at most its demand cap at each
        site of its support.  This is what job ``i`` is guaranteed if it
        refuses to share and runs in a static 1/n partition of every site.
        """
        wshare = self.weights / self.weights.sum()
        per_site = np.outer(wshare, self.capacities)  # (n, m) equal split
        banked = np.minimum(per_site, self.demand_caps)
        return np.where(self.support, banked, 0.0).sum(axis=1)
