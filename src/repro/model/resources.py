"""Resource-vector primitives shared by the model, schema, and service layers.

A *resource vector* maps resource names (``"cpu"``, ``"mem"``, ...) to
positive finite amounts.  The production model keeps the historical scalar
world as the canonical representation of the single-resource case: a vector
of exactly ``{"slots": x}`` *is* the scalar ``x``.  Canonicalizing at
construction time means slots-only clusters built through the new vector
API are indistinguishable — fingerprints, wire bytes, cache keys — from
clusters built through the original scalar API, which is what makes the
back-compat and bit-identity guarantees of the v1 resource API free.

This module is dependency-free (stdlib only) so that every layer — model
dataclasses, wire schema, service state, dist protocol — can raise the same
typed errors without import cycles.
"""

from __future__ import annotations

import math
from typing import Mapping

#: Name of the canonical single resource of the scalar world.
SLOTS = "slots"

__all__ = [
    "SLOTS",
    "ResourceError",
    "UnknownResourceError",
    "ResourceMismatchError",
    "normalize_resources",
    "scalar_equivalent",
]


class ResourceError(ValueError):
    """Base class for resource-vector validation failures."""


class UnknownResourceError(ResourceError):
    """A vector references a resource name the cluster does not offer."""


class ResourceMismatchError(ResourceError):
    """A vector's resource-name set disagrees with the cluster's."""


def normalize_resources(
    values: Mapping[str, object] | None,
    context: str,
    *,
    allow_zero: bool = False,
) -> dict[str, float]:
    """Validate and canonicalize a resource vector.

    Returns a plain ``{name: float}`` dict with deterministic (sorted-name)
    iteration order.  Every amount must be finite; amounts must be strictly
    positive unless ``allow_zero`` (zero entries are then dropped, matching
    the workload-support convention).  Raises :class:`ResourceError` on any
    violation, with the offending resource named in the message.
    """
    if values is None:
        return {}
    out: dict[str, float] = {}
    for key in sorted(values):
        require = bool(key) and isinstance(key, str)
        if not require:
            raise ResourceError(f"{context}: resource names must be non-empty strings, got {key!r}")
        raw = values[key]
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ResourceError(f"{context}: amount of {key!r} must be a number, got {type(raw).__name__}")
        fval = float(raw)
        if math.isnan(fval):
            raise ResourceError(f"{context}: amount of {key!r} must not be NaN")
        if not math.isfinite(fval):
            raise ResourceError(f"{context}: amount of {key!r} must be finite, got {fval}")
        if fval < 0.0 or (fval == 0.0 and not allow_zero):
            bound = "non-negative" if allow_zero else "strictly positive"
            raise ResourceError(f"{context}: amount of {key!r} must be {bound}, got {fval}")
        if fval > 0.0:
            out[key] = fval
    if not out and values:
        raise ResourceError(f"{context}: resource vector must have at least one positive entry")
    return out


def scalar_equivalent(vector: Mapping[str, float]) -> float | None:
    """Return the scalar value when ``vector`` is canonically single-resource.

    A vector of exactly ``{"slots": x}`` is the scalar ``x``; anything else
    (other names, or several resources) has no scalar equivalent and returns
    ``None``.
    """
    if len(vector) == 1 and SLOTS in vector:
        return float(vector[SLOTS])
    return None
