"""Job: a distributed computation with work pinned at multiple sites."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro._util import require
from repro.model.resources import SLOTS, normalize_resources


def _frozen_mapping(values: Mapping[str, float], name: str, *, allow_zero: bool) -> Mapping[str, float]:
    out: dict[str, float] = {}
    for key, value in values.items():
        require(bool(key), f"{name}: site names must be non-empty")
        fval = float(value)
        # isfinite: inf satisfies >= 0 but poisons every solver downstream
        # (aggregate demands, flow capacities); NaN fails both checks.
        require(
            math.isfinite(fval) and fval >= 0.0,
            f"{name}[{key!r}] must be finite and non-negative, got {fval}",
        )
        if fval > 0.0 or allow_zero:
            out[key] = fval
    return MappingProxyType(out)


@dataclass(frozen=True)
class Job:
    """A job requiring distributed execution across sites.

    Parameters
    ----------
    name:
        Unique identifier within a cluster.
    workload:
        ``{site_name: work}`` — the amount of work (task-seconds) the job
        must execute at each site, pinned there by data locality.  Zero
        entries are dropped; the remaining keys form the job's *support*.
    demand:
        Optional ``{site_name: rate}`` — the maximum rate at which the job
        can usefully consume resource at a site (its runnable parallelism
        there).  Sites absent from ``demand`` are uncapped (bounded only by
        site capacity).  Demand caps are what make the sharing-incentive
        property non-trivial for AMF (see DESIGN.md §3.2).
    weight:
        Fairness weight; progressive filling equalizes ``A_i / weight``.
        Defaults to 1 (the unweighted fairness of the paper).
    arrival:
        Arrival time for dynamic simulation; ignored by static solvers.
    resources:
        Optional per-task resource demand vector ``{resource: amount}``
        (uniform across sites, DRF-style): running the job at rate ``a``
        at a site consumes ``a * amount`` of each resource there.  An
        empty mapping — or the canonical ``{"slots": 1.0}`` — is the
        historical scalar world where one unit of rate consumes one slot.
        All amounts must be strictly positive and finite.
    """

    name: str
    workload: Mapping[str, float]
    demand: Mapping[str, float] = field(default_factory=dict)
    weight: float = 1.0
    arrival: float = 0.0
    resources: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(bool(self.name), "job name must be non-empty")
        require(
            math.isfinite(self.weight) and self.weight > 0.0,
            f"job {self.name!r}: weight must be positive and finite, got {self.weight}",
        )
        require(
            math.isfinite(self.arrival) and self.arrival >= 0.0,
            f"job {self.name!r}: arrival must be non-negative and finite, got {self.arrival}",
        )
        workload = _frozen_mapping(self.workload, f"job {self.name!r} workload", allow_zero=False)
        require(len(workload) > 0, f"job {self.name!r}: workload must be positive at >= 1 site")
        object.__setattr__(self, "workload", workload)
        demand = _frozen_mapping(self.demand, f"job {self.name!r} demand", allow_zero=True)
        for site in demand:
            require(site in workload, f"job {self.name!r}: demand cap at {site!r} without workload there")
        object.__setattr__(self, "demand", demand)
        vec = normalize_resources(self.resources, f"job {self.name!r} resources")
        if len(vec) == 1 and SLOTS in vec and vec[SLOTS] == 1.0:
            vec = {}  # canonical scalar job
        object.__setattr__(self, "resources", MappingProxyType(vec))

    @property
    def is_multiresource(self) -> bool:
        """True when this job declares a non-canonical per-task resource vector."""
        return len(self.resources) > 0

    @property
    def resource_vector(self) -> dict[str, float]:
        """Per-task demand as a resource vector (scalar → ``{"slots": 1.0}``)."""
        if not self.resources:
            return {SLOTS: 1.0}
        return dict(self.resources)

    @property
    def support(self) -> frozenset[str]:
        """Names of the sites where this job has work."""
        return frozenset(self.workload)

    @property
    def total_work(self) -> float:
        """Total work across all sites."""
        return sum(self.workload.values())

    def demand_at(self, site: str, default: float = float("inf")) -> float:
        """Demand cap at ``site`` (``default`` when uncapped)."""
        if site not in self.workload:
            return 0.0
        return self.demand.get(site, default)

    def with_workload(self, workload: Mapping[str, float], demand: Mapping[str, float] | None = None) -> "Job":
        """Return a copy with a different workload distribution.

        Used by the strategy-proofness prober, which explores misreports.
        """
        return Job(
            name=self.name,
            workload=dict(workload),
            demand=dict(self.demand if demand is None else demand),
            weight=self.weight,
            arrival=self.arrival,
            resources=dict(self.resources),
        )

    def scaled(self, factor: float) -> "Job":
        """Return a copy with workload (not demand) multiplied by ``factor``."""
        require(factor > 0.0, "scale factor must be positive")
        return Job(
            name=self.name,
            workload={s: w * factor for s, w in self.workload.items()},
            demand=dict(self.demand),
            weight=self.weight,
            arrival=self.arrival,
            resources=dict(self.resources),
        )
