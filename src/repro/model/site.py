"""Site: one machine cluster / datacenter offering a congestible resource."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro._util import require


@dataclass(frozen=True, slots=True)
class Site:
    """A resource site (machine cluster or datacenter).

    Parameters
    ----------
    name:
        Human-readable identifier, unique within a cluster.
    capacity:
        Amount of the congestible resource the site offers (e.g. slots).
        Must be strictly positive and finite.
    tags:
        Optional free-form labels (region, tier, ...) carried through to
        traces and reports; they never affect allocation.
    """

    name: str
    capacity: float
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        require(bool(self.name), "site name must be non-empty")
        require(
            math.isfinite(self.capacity) and self.capacity > 0.0,
            f"site {self.name!r}: capacity must be positive and finite, got {self.capacity}",
        )

    def scaled(self, factor: float) -> "Site":
        """Return a copy of this site with capacity multiplied by ``factor``."""
        require(factor > 0.0, "scale factor must be positive")
        return Site(self.name, self.capacity * factor, self.tags)
