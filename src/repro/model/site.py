"""Site: one machine cluster / datacenter offering congestible resources."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro._util import require
from repro.model.resources import SLOTS, normalize_resources, scalar_equivalent


@dataclass(frozen=True, slots=True)
class Site:
    """A resource site (machine cluster or datacenter).

    Parameters
    ----------
    name:
        Human-readable identifier, unique within a cluster.
    capacity:
        Amount of the congestible resource the site offers.  Either a
        scalar (the historical single-resource form, canonically the
        ``"slots"`` resource) or a resource-name → amount mapping.  A
        mapping of exactly ``{"slots": x}`` canonicalizes to the scalar
        ``x``, so slots-only sites are identical objects however they
        were constructed.  All amounts must be strictly positive and
        finite.
    tags:
        Optional free-form labels (region, tier, ...) carried through to
        traces and reports; they never affect allocation.
    """

    name: str
    capacity: float
    tags: tuple[str, ...] = field(default=())
    # Sorted (resource, amount) pairs when multi-resource; None for the
    # canonical scalar site.  A tuple keeps the frozen dataclass hashable.
    resources: tuple[tuple[str, float], ...] | None = field(default=None)

    def __post_init__(self) -> None:
        require(bool(self.name), "site name must be non-empty")
        cap = self.capacity
        if isinstance(cap, Mapping):
            vec = normalize_resources(cap, f"site {self.name!r} capacity")
            require(bool(vec), f"site {self.name!r}: capacity vector must be non-empty")
            scalar = scalar_equivalent(vec)
            if scalar is not None:
                object.__setattr__(self, "capacity", scalar)
                object.__setattr__(self, "resources", None)
            else:
                # Representative scalar: the slots entry if offered, else the
                # largest amount.  Multi-resource solver paths never read it;
                # it only keeps scalar-shaped reporting (utilization, stats)
                # well defined.
                rep = vec.get(SLOTS, max(vec.values()))
                object.__setattr__(self, "capacity", float(rep))
                object.__setattr__(self, "resources", tuple(sorted(vec.items())))
        else:
            require(
                isinstance(cap, (int, float)) and not isinstance(cap, bool),
                f"site {self.name!r}: capacity must be a number or a resource mapping, got {type(cap).__name__}",
            )
            object.__setattr__(self, "capacity", float(cap))
            require(self.resources is None, f"site {self.name!r}: pass vector capacities via `capacity`")
        require(
            math.isfinite(self.capacity) and self.capacity > 0.0,
            f"site {self.name!r}: capacity must be positive and finite, got {self.capacity}",
        )

    @property
    def is_multiresource(self) -> bool:
        """True when this site offers a non-canonical resource vector."""
        return self.resources is not None

    @property
    def resource_vector(self) -> dict[str, float]:
        """The site's capacity as a resource vector (scalar → ``{"slots": x}``)."""
        if self.resources is None:
            return {SLOTS: self.capacity}
        return dict(self.resources)

    def capacity_of(self, resource: str, default: float = 0.0) -> float:
        """Capacity of one resource (``default`` when not offered)."""
        if self.resources is None:
            return self.capacity if resource == SLOTS else default
        for res, amount in self.resources:
            if res == resource:
                return amount
        return default

    def scaled(self, factor: float) -> "Site":
        """Return a copy of this site with all capacities multiplied by ``factor``."""
        require(factor > 0.0, "scale factor must be positive")
        if self.resources is None:
            return Site(self.name, self.capacity * factor, self.tags)
        return Site(self.name, {res: amount * factor for res, amount in self.resources}, self.tags)
