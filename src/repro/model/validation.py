"""Instance-level validation and diagnostics.

:func:`validate_instance` performs the cross-cutting checks that the
constructors of :class:`~repro.model.job.Job` / :class:`~repro.model.site.Site`
cannot do alone (they only see one entity), and returns a structured report
that the CLI and the workload generators surface to users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.cluster import Cluster


@dataclass(slots=True)
class InstanceReport:
    """Diagnostics for a cluster instance.

    ``ok`` is False only for *hard* problems (currently none beyond what the
    constructors reject); ``warnings`` flag soft issues that commonly indicate
    a mis-built workload (dead sites, starved jobs, trivially uncontended
    instances).
    """

    ok: bool = True
    warnings: list[str] = field(default_factory=list)
    n_jobs: int = 0
    n_sites: int = 0
    total_capacity: float = 0.0
    total_demand: float = 0.0
    contention_ratio: float = 0.0
    skew_gini: float = 0.0

    def __str__(self) -> str:
        lines = [
            f"instance: {self.n_jobs} jobs x {self.n_sites} sites",
            f"  capacity={self.total_capacity:g} demand={self.total_demand:g} "
            f"contention={self.contention_ratio:.3f} workload-gini={self.skew_gini:.3f}",
        ]
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 = equal, ->1 = concentrated)."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0 or v.sum() <= 0.0:
        return 0.0
    n = v.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * v).sum() / (n * v.sum())) - (n + 1.0) / n)


def validate_instance(cluster: Cluster) -> InstanceReport:
    """Validate a cluster and compute summary diagnostics.

    Soft warnings:

    * a site no job has work at (dead capacity),
    * a job whose aggregate demand cap is zero (cannot make progress),
    * total demand below total capacity (no contention anywhere — every
      policy coincides, so a fairness comparison is vacuous),
    * a job whose support is every site with zero workload skew everywhere
      (the per-site baseline and AMF coincide for such instances).
    """
    report = InstanceReport(
        n_jobs=cluster.n_jobs,
        n_sites=cluster.n_sites,
        total_capacity=cluster.total_capacity,
        total_demand=float(cluster.aggregate_demand.sum()),
    )
    report.contention_ratio = report.total_demand / report.total_capacity if report.total_capacity else 0.0
    # Per-site workload shares drive the skew diagnostic.
    site_work = cluster.workloads.sum(axis=0)
    report.skew_gini = gini(site_work)

    used = cluster.support.any(axis=0)
    for j, site in enumerate(cluster.sites):
        if not used[j]:
            report.warnings.append(f"site {site.name!r} has no workload from any job")
    for i, job in enumerate(cluster.jobs):
        if cluster.aggregate_demand[i] <= 0.0:
            report.warnings.append(f"job {job.name!r} has zero aggregate demand cap (all caps zero)")
    if report.contention_ratio < 1.0:
        report.warnings.append(
            f"total demand ({report.total_demand:g}) below capacity ({report.total_capacity:g}): "
            "instance is uncontended; all fair policies coincide"
        )
    return report
