"""JSON (de)serialization of clusters, jobs and allocations.

A downstream user needs to persist instances and results: experiment
configs live in version control, allocations get shipped to dashboards.
The format is a plain JSON object (versioned with ``"format"``), stable
across library versions:

.. code-block:: json

    {
      "format": "repro-cluster-v1",
      "sites": [{"name": "east", "capacity": 10.0}],
      "jobs": [
        {"name": "j0", "workload": {"east": 5.0},
         "demand": {"east": 1.0}, "weight": 1.0, "arrival": 0.0}
      ]
    }

``inf`` demand caps are simply omitted (absent = uncapped), so the files
stay valid strict JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro._util import require
from repro.core.allocation import Allocation
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site

CLUSTER_FORMAT = "repro-cluster-v1"
ALLOCATION_FORMAT = "repro-allocation-v1"


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------


def cluster_to_dict(cluster: Cluster) -> dict[str, Any]:
    """Serialize a cluster to a JSON-compatible dict."""
    return {
        "format": CLUSTER_FORMAT,
        "sites": [
            {
                "name": s.name,
                # Vector capacities serialize as a map; canonical scalar
                # sites keep the historical number (byte-stable wire form).
                "capacity": dict(s.resources) if s.resources is not None else s.capacity,
                **({"tags": list(s.tags)} if s.tags else {}),
            }
            for s in cluster.sites
        ],
        "jobs": [
            {
                "name": j.name,
                "workload": dict(j.workload),
                **({"demand": dict(j.demand)} if j.demand else {}),
                **({"weight": j.weight} if j.weight != 1.0 else {}),
                **({"arrival": j.arrival} if j.arrival != 0.0 else {}),
                **({"resources": dict(j.resources)} if j.resources else {}),
            }
            for j in cluster.jobs
        ],
    }


def cluster_from_dict(data: dict[str, Any]) -> Cluster:
    """Rebuild a cluster from :func:`cluster_to_dict` output."""
    require(data.get("format") == CLUSTER_FORMAT, f"unsupported cluster format {data.get('format')!r}")
    sites = [
        Site(
            s["name"],
            {k: float(v) for k, v in s["capacity"].items()}
            if isinstance(s["capacity"], dict)
            else float(s["capacity"]),
            tuple(s.get("tags", ())),
        )
        for s in data["sites"]
    ]
    jobs = [
        Job(
            j["name"],
            {k: float(v) for k, v in j["workload"].items()},
            {k: float(v) for k, v in j.get("demand", {}).items()},
            weight=float(j.get("weight", 1.0)),
            arrival=float(j.get("arrival", 0.0)),
            resources={k: float(v) for k, v in j.get("resources", {}).items()},
        )
        for j in data["jobs"]
    ]
    return Cluster(sites, jobs)


def save_cluster(cluster: Cluster, path: str | Path) -> None:
    """Write a cluster to a JSON file."""
    Path(path).write_text(json.dumps(cluster_to_dict(cluster), indent=2))


def load_cluster(path: str | Path) -> Cluster:
    """Read a cluster from a JSON file."""
    return cluster_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------


def allocation_to_dict(alloc: Allocation) -> dict[str, Any]:
    """Serialize an allocation (with its cluster) to a JSON-compatible dict."""
    return {
        "format": ALLOCATION_FORMAT,
        "policy": alloc.policy,
        "cluster": cluster_to_dict(alloc.cluster),
        "matrix": [[float(x) for x in row] for row in alloc.matrix],
    }


def allocation_from_dict(data: dict[str, Any]) -> Allocation:
    """Rebuild an allocation; re-validates every invariant on load."""
    require(
        data.get("format") == ALLOCATION_FORMAT,
        f"unsupported allocation format {data.get('format')!r}",
    )
    cluster = cluster_from_dict(data["cluster"])
    return Allocation(cluster, np.asarray(data["matrix"], dtype=float), policy=data.get("policy", "loaded"))


def save_allocation(alloc: Allocation, path: str | Path) -> None:
    """Write an allocation (with its cluster) to a JSON file."""
    Path(path).write_text(json.dumps(allocation_to_dict(alloc), indent=2))


def load_allocation(path: str | Path) -> Allocation:
    """Read an allocation from a JSON file (invariants re-checked)."""
    return allocation_from_dict(json.loads(Path(path).read_text()))
