"""System model: jobs, sites and multi-site cluster instances.

The model layer is the substrate every policy in :mod:`repro.core` operates
on.  A :class:`~repro.model.cluster.Cluster` is an immutable snapshot of the
world: site capacities, per-job workload distributions (how much work each
job has pinned at each site) and per-job demand caps (how fast each job can
usefully consume resource at each site).
"""

from repro.model.job import Job
from repro.model.site import Site
from repro.model.cluster import Cluster
from repro.model.validation import validate_instance

__all__ = ["Job", "Site", "Cluster", "validate_instance"]
