"""Flow-network substrate.

A from-scratch maximum-flow engine used by the AMF solver (feasibility of
aggregate targets), the Pareto-efficiency checker (residual reachability) and
the completion-time add-on (flows with per-edge lower bounds).

The implementation is Dinic's algorithm over an adjacency-list residual
graph with float capacities and a global tolerance; see
:mod:`repro.flownet.dinic`.  ``networkx`` is deliberately *not* used here —
it serves only as an independent oracle in the test suite.
"""

from repro.flownet.graph import FlowGraph
from repro.flownet.dinic import Dinic, MaxFlowResult
from repro.flownet.mincut import min_cut_partition
from repro.flownet.lower_bounds import BoundedEdge, feasible_flow_with_lower_bounds
from repro.flownet.arrayflow import ArrayFlowGraph
from repro.flownet.parametric import ParametricFeasibility, ProbeOutcome, ProbeStats

__all__ = [
    "FlowGraph",
    "Dinic",
    "MaxFlowResult",
    "min_cut_partition",
    "BoundedEdge",
    "feasible_flow_with_lower_bounds",
    "ArrayFlowGraph",
    "ParametricFeasibility",
    "ProbeOutcome",
    "ProbeStats",
]
