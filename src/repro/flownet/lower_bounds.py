"""Feasible flow with per-edge lower bounds (bounded circulation).

The completion-time add-on needs flows where every job *must* send at least
``w_ij / T`` along each support edge (so no site of the job finishes later
than the makespan target ``T``) while aggregates stay fixed.  That is the
classic "circulation with lower bounds" problem, reduced to plain max-flow:

* every edge ``(u, v)`` with bounds ``[l, c]`` becomes ``(u, v)`` with
  capacity ``c - l``;
* a super-source ``S*`` supplies ``l`` into ``v`` and a super-sink ``T*``
  drains ``l`` from ``u`` (netted per node);
* an ``inf`` edge ``t -> s`` closes the original flow into a circulation;
* a feasible circulation exists iff the ``S* -> T*`` max-flow saturates all
  supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro._util import require
from repro.flownet.dinic import Dinic
from repro.flownet.graph import INF, FlowGraph


@dataclass(frozen=True, slots=True)
class BoundedEdge:
    """A directed edge with a flow interval ``[lower, upper]``."""

    tail: Hashable
    head: Hashable
    lower: float
    upper: float

    def __post_init__(self) -> None:
        require(self.lower >= 0.0, f"lower bound must be non-negative, got {self.lower}")
        require(self.upper >= self.lower, f"edge {self.tail}->{self.head}: upper {self.upper} < lower {self.lower}")


def feasible_flow_with_lower_bounds(
    edges: list[BoundedEdge],
    source: Hashable,
    sink: Hashable,
    *,
    flow_value: float | None = None,
    tolerance_scale: float | None = None,
) -> dict[tuple[Hashable, Hashable], float] | None:
    """Find an ``source -> sink`` flow respecting all edge bounds, or ``None``.

    Parameters
    ----------
    edges:
        The bounded edges.  Parallel edges are allowed; the returned mapping
        accumulates their flows under the same ``(tail, head)`` key.
    flow_value:
        If given, the total ``source -> sink`` value is pinned to exactly
        this number (implemented as bounds ``[v, v]`` on the closing edge);
        otherwise any feasible value is accepted.
    tolerance_scale:
        Widens the saturation check for instances whose supply is a sum of
        many terms; defaults to ``max(1, number of edges)``.

    Returns
    -------
    Mapping ``(tail, head) -> flow`` on the original edges, or ``None`` when
    no feasible flow exists.
    """
    g = FlowGraph()
    supply: dict[int, float] = {}

    def add_bounded(tail: Hashable, head: Hashable, lower: float, upper: float) -> int | None:
        u, v = g.node(tail), g.node(head)
        if lower > 0.0:
            supply[v] = supply.get(v, 0.0) + lower
            supply[u] = supply.get(u, 0.0) - lower
        if upper - lower > 0.0 or upper == INF:
            return g.add_edge(tail, head, upper - lower if upper != INF else INF)
        return None

    edge_ids: list[tuple[BoundedEdge, int | None]] = []
    for be in edges:
        edge_ids.append((be, add_bounded(be.tail, be.head, be.lower, be.upper)))
    if flow_value is None:
        add_bounded(sink, source, 0.0, INF)
    else:
        add_bounded(sink, source, flow_value, flow_value)

    super_s, super_t = ("__super_source__",), ("__super_sink__",)
    total_supply = 0.0
    for nid, net in supply.items():
        if net > 0.0:
            g.add_edge(super_s, g.key_of(nid), net)
            total_supply += net
        elif net < 0.0:
            g.add_edge(g.key_of(nid), super_t, -net)

    result = Dinic(g).max_flow(super_s, super_t)
    scale = tolerance_scale if tolerance_scale is not None else max(1.0, float(len(edges)))
    from repro._util import feq

    if not feq(result.value, total_supply, scale=scale):
        return None

    flows: dict[tuple[Hashable, Hashable], float] = {}
    for be, eid in edge_ids:
        f = be.lower + (g.edge_flow(eid) if eid is not None else 0.0)
        key = (be.tail, be.head)
        flows[key] = flows.get(key, 0.0) + f
    return flows
