"""Warm-started parametric feasibility: one residual graph, many λ-probes.

One AMF solve asks the same question dozens of times — "are the aggregate
targets ``A(λ)`` feasible?" — for a λ sequence that mostly rises
(progressive filling) and occasionally falls (bisection, guard-loop
retries).  :class:`ParametricFeasibility` answers that sequence on a single
:class:`~repro.flownet.arrayflow.ArrayFlowGraph` kept alive across probes:

* **λ rises** — only the source-arc capacities grow, so the existing flow
  stays feasible and max-flow *continues* from it
  (Gallo–Grigoriadis–Tarjan-style monotone reuse) instead of restarting
  from zero.
* **λ falls** — the excess flow above the new targets is cancelled locally
  (walk each shrunk source arc's flow back along its job→site edges),
  then the solve continues warm; no rebuild, no reset.

Two structure-exploiting screens run before the flow network is touched:

* **Dominance early-accept** — targets elementwise below the last verified
  feasible vector are feasible by downward closure of the region.
* **Gale–Hoffman cut screening** — stored site cuts (seeded from a
  :class:`~repro.core.amf.CutBasis` and grown from this solve's own min
  cuts) reject infeasible targets analytically: for a site set ``S``,
  ``sum_i max(0, A_i - cross_i(S)) > cap(S)`` certifies infeasibility.

A third preprocessing pass **folds degree-1 jobs** out of the network: a
job supported by a single site must route its whole target through it, so
it becomes a capacity subtraction on that site's sink arc instead of a
node.  Min cuts of the reduced graph map back exactly (the source side of
the minimal min cut is flow-invariant), so verdicts *and* cuts match the
cold path.

Verdicts are identical to a cold :class:`~repro.flownet.bipartite
.FeasibilityNetwork` solve — same tolerance, same minimal min cut — which
the hypothesis suite checks probe-by-probe (tests/flownet/test_parametric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._util import ABS_TOL, REL_TOL, feq
from repro.flownet.arrayflow import ArrayFlowGraph
from repro.model.cluster import Cluster
from repro.obs.tracing import TRACER, span

__all__ = ["ParametricFeasibility", "ProbeOutcome", "ProbeStats"]


@dataclass(slots=True)
class ProbeStats:
    """How the oracle answered its probes (reuse observability)."""

    probes: int = 0
    early_accepts: int = 0  # answered by the last-feasible dominance check
    cut_rejects: int = 0  # answered analytically by a stored site cut
    warm_solves: int = 0  # flow solves continuing from existing flow
    cold_solves: int = 0  # flow solves starting from zero flow
    rollbacks: int = 0  # probes that cancelled excess flow before solving
    folded_jobs: int = 0  # degree-1 jobs folded into site capacity


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """One feasibility verdict; mirrors ``FeasibilityOutcome`` plus ``mode``.

    ``cut_jobs`` / ``cut_sites`` are the job / site indices on the source
    side of the minimal min cut (mapped back through the degree-1 folding),
    or an analytically violated stored cut when ``mode == "cut-reject"``.
    """

    feasible: bool
    flow_value: float
    demanded: float
    cut_jobs: frozenset[int]
    cut_sites: frozenset[int]
    mode: str  # "early-accept" | "cut-reject" | "flow-warm" | "flow-cold"


class ParametricFeasibility:
    """Feasibility oracle bound to one cluster, warm across target probes.

    Parameters
    ----------
    cluster:
        The instance; topology and demand caps are fixed for the oracle's
        lifetime (targets are the only moving part).
    cut_sets:
        Site-index sets seeded into the screening pool, typically
        ``CutBasis.instantiate(cluster)`` from the incremental solver.
    fold_single_site:
        Fold degree-1 jobs into their site's sink-arc capacity.
    screen_cuts:
        Answer probes from stored Gale–Hoffman cuts when possible.  Probes
        with ``need_cut=True`` always bypass the screen so callers get a
        genuinely *new* min cut (the AMF cutting-plane loop requires it).
    """

    def __init__(
        self,
        cluster: Cluster,
        cut_sets: Iterable[frozenset[int]] = (),
        *,
        fold_single_site: bool = True,
        screen_cuts: bool = True,
    ):
        self.cluster = cluster
        self.stats = ProbeStats()
        n, m = cluster.n_jobs, cluster.n_sites
        self._n, self._m = n, m
        self._scale = max(1.0, float(n + m))
        self._capacities = cluster.capacities
        support = cluster.support
        dcaps = cluster.demand_caps

        degree = support.sum(axis=1)
        folded = (degree == 1) if fold_single_site else np.zeros(n, dtype=bool)
        self._folded_idx = np.flatnonzero(folded)
        self._multi_idx = np.flatnonzero(~folded)
        if self._folded_idx.size:
            self._folded_site = support[self._folded_idx].argmax(axis=1).astype(np.int64)
            self._folded_cap = dcaps[self._folded_idx, self._folded_site]
        else:
            self._folded_site = np.zeros(0, dtype=np.int64)
            self._folded_cap = np.zeros(0)
        self.stats.folded_jobs = int(self._folded_idx.size)

        # Reduced network: src=0, multi jobs 1..K, sites K+1..K+m, snk last.
        # Edge order fixes the ids: K source arcs, then support arcs, then m
        # sink arcs (forward id of the k-th edge is 2k).
        k_multi = int(self._multi_idx.size)
        self._src = 0
        self._site0 = k_multi + 1
        self._snk = k_multi + m + 1
        tails: list[int] = []
        heads: list[int] = []
        caps_e: list[float] = []
        for k in range(k_multi):
            tails.append(self._src)
            heads.append(1 + k)
            caps_e.append(0.0)
        sup_eids: list[int] = []
        sup_job: list[int] = []
        sup_site: list[int] = []
        self._job_edges: list[list[tuple[int, int]]] = [[] for _ in range(k_multi)]
        self._site_edges: list[list[tuple[int, int]]] = [[] for _ in range(m)]
        eid = 2 * k_multi
        for k, i in enumerate(self._multi_idx):
            for j in np.flatnonzero(support[i]):
                j = int(j)
                tails.append(1 + k)
                heads.append(self._site0 + j)
                caps_e.append(float(dcaps[i, j]))
                sup_eids.append(eid)
                sup_job.append(int(i))
                sup_site.append(j)
                self._job_edges[k].append((eid, j))
                self._site_edges[j].append((eid, k))
                eid += 2
        self._site_eids = np.arange(m, dtype=np.int64) * 2 + eid
        for j in range(m):
            tails.append(self._site0 + j)
            heads.append(self._snk)
            caps_e.append(0.0)
        self._graph = ArrayFlowGraph(self._snk + 1, tails, heads, caps_e)
        self._source_eids = np.arange(k_multi, dtype=np.int64) * 2
        self._source_eids_list = self._source_eids.tolist()
        self._site_eids_list = self._site_eids.tolist()
        self._sup_eids = np.asarray(sup_eids, dtype=np.int64)
        self._sup_job = np.asarray(sup_job, dtype=np.int64)
        self._sup_site = np.asarray(sup_site, dtype=np.int64)

        # Screening pool (Gale–Hoffman site cuts over the *full* job set).
        self._screen = bool(screen_cuts)
        self._cut_sets: set[frozenset[int]] = set()
        self._cut_sites_list: list[frozenset[int]] = []
        self._cut_crosses: list[np.ndarray] = []
        self._cut_rhs: list[float] = []
        self._cut_mat: np.ndarray | None = None
        self._cut_rhs_arr: np.ndarray | None = None
        for sites in cut_sets:
            self.observe_cut(sites)

        self._last_feasible: np.ndarray | None = None
        self._anchor: np.ndarray | None = None
        self._anchor_deficit = 0.0
        self._flow_targets: np.ndarray | None = None
        # bumped on every actual flow solve; lets callers prove the graph
        # state is unchanged since an earlier probe (repeat-probe reuse)
        self._flow_serial = 0

    # ------------------------------------------------------------------
    # Screening cuts
    # ------------------------------------------------------------------
    def observe_cut(self, sites: Iterable[int]) -> None:
        """Add one site set to the screening pool (idempotent)."""
        key = frozenset(int(j) for j in sites)
        if not key or key in self._cut_sets:
            return
        self._cut_sets.add(key)
        outside = np.ones(self._m, dtype=bool)
        outside[list(key)] = False
        self._cut_sites_list.append(key)
        self._cut_crosses.append(self.cluster.demand_caps[:, outside].sum(axis=1))
        self._cut_rhs.append(float(self.cluster.capacities[sorted(key)].sum()))
        self._cut_mat = None  # invalidate the stacked cache

    def set_dominance_anchor(self, targets: np.ndarray, deficit: float = 0.0) -> None:
        """Pin a *flow-verified feasible* vector as a standing dominance bound.

        ``_last_feasible`` tracks the most recent feasible probe — which a
        falling λ-sequence (bisection) overwrites with ever-smaller vectors.
        The anchor is checked alongside it and never overwritten, so a
        caller holding the *final* leximin vector up front (the GGT sweep,
        :mod:`repro.flownet.ggt`) keeps answering every on-trajectory
        feasible probe analytically for the whole solve.  The caller must
        have verified ``targets`` through :meth:`probe` (or an equivalent
        flow solve) first: dominance is a proof only against a vector the
        flow check accepted.

        ``deficit`` is an upper bound on the flow shortfall at ``targets``
        (``demanded - flow_value`` of its verification probe).  The flow
        check accepts within a slack *relative to each probe's own demanded
        sum*, so a vector verified near the tolerance boundary dominates
        smaller vectors whose slack is tighter than its own deficit — for
        those, the flow's verdict is genuinely undetermined by dominance.
        Max-flow is 1-Lipschitz in the source capacities, so a dominated
        vector's deficit never exceeds the anchor's; an accept therefore
        additionally requires the anchor's deficit to fit inside the
        *probe's* accept slack.  Anchors verified with ~zero deficit (the
        sweep's exact leximin vector) pass this for every probe.

        The stored bound carries a hair of padding (1e-12 relative): the
        anchor and the probes it answers compute the same breakpoints
        through *different* float expressions (event-sweep crossing vs
        cutting-plane pool), so exact comparison would lose to ulp noise on
        precisely the probes the anchor exists for.  The pad is three
        orders below the flow check's accept slack
        (``scale * max(ABS_TOL, REL_TOL * demanded)``), so a padded accept
        can never flip a verdict the flow would decide the other way; its
        summed contribution to the anchor's deficit is folded into the
        stored bound.
        """
        anchor = np.asarray(targets, dtype=float).copy()
        pad = 1e-12 * np.maximum(1.0, np.abs(anchor))
        anchor += pad
        self._anchor = anchor
        self._anchor_deficit = float(deficit) + float(pad.sum())

    def _screen_reject(
        self, targets: np.ndarray, demanded: float, margin: float = 2.0
    ) -> ProbeOutcome | None:
        """An analytically violated stored cut, or ``None``.

        The violation margin is required to clear the flow tolerance with
        headroom, so the screen never rejects a vector the flow check would
        (within tolerance) accept — it is a pure shortcut, not a relaxation.
        ``margin`` scales the required headroom in units of the flow accept
        slack; any value > 1 leaves an absolute gap of
        ``(margin - 1) * slack`` between a reject and the feq boundary,
        which dwarfs the float-summation noise separating the screen's
        excess arithmetic from the flow's delivered sum (~``n * eps``
        relative vs the slack's ``scale * REL_TOL``).
        """
        if not self._cut_rhs:
            return None
        if self._cut_mat is None:
            self._cut_mat = np.stack(self._cut_crosses)
            self._cut_rhs_arr = np.asarray(self._cut_rhs)
        lhs = np.maximum(targets[None, :] - self._cut_mat, 0.0).sum(axis=1)
        # A violated cut bounds the max flow: shortfall >= excess.  feq calls
        # the probe infeasible once the shortfall clears
        # ``scale * max(ABS_TOL, REL_TOL * demanded)`` (delivered <= demanded),
        # so requiring a multiple of that margin guarantees the flow check
        # would agree.
        slack = margin * self._scale * max(ABS_TOL, REL_TOL * abs(demanded))
        excess = lhs - self._cut_rhs_arr
        k = int(np.argmax(excess))
        if excess[k] <= slack:
            return None
        cross = self._cut_mat[k]
        jobs = frozenset(int(i) for i in np.flatnonzero(targets > cross + ABS_TOL))
        return ProbeOutcome(
            feasible=False,
            flow_value=demanded - float(excess[k]),  # certified upper bound
            demanded=demanded,
            cut_jobs=jobs,
            cut_sites=self._cut_sites_list[k],
            mode="cut-reject",
        )

    # ------------------------------------------------------------------
    # Flow-state maintenance
    # ------------------------------------------------------------------
    def _cancel_at_site(self, j: int, excess: float) -> None:
        """Cancel ``excess`` flow through site ``j`` (walks incoming arcs)."""
        cap = self._graph.cap
        te = self._site_eids_list[j]
        for eid, k in self._site_edges[j]:
            if excess <= 1e-15:
                return
            f = cap[eid + 1]
            if f <= 0.0:
                continue
            r = min(f, excess)
            cap[eid] += r
            cap[eid + 1] -= r
            se = self._source_eids_list[k]
            cap[se] += r
            cap[se + 1] -= r
            cap[te] += r
            cap[te + 1] -= r
            excess -= r

    def _cancel_at_job(self, k: int, excess: float) -> None:
        """Cancel ``excess`` flow leaving multi-job ``k`` (walks its arcs)."""
        cap = self._graph.cap
        se = self._source_eids_list[k]
        for eid, j in self._job_edges[k]:
            if excess <= 1e-15:
                return
            f = cap[eid + 1]
            if f <= 0.0:
                continue
            r = min(f, excess)
            cap[eid] += r
            cap[eid + 1] -= r
            te = self._site_eids_list[j]
            cap[te] += r
            cap[te + 1] -= r
            cap[se] += r
            cap[se + 1] -= r
            excess -= r

    def _install(self, t_multi: np.ndarray, spare: np.ndarray) -> bool:
        """Install per-probe capacities, keeping all still-valid flow.

        Decreases cancel just the excess flow locally (the rollback arm of
        the parametric reuse); increases only add residual.  Returns whether
        any flow had to be rolled back.
        """
        g = self._graph
        cap = g.cap
        src_tw = self._source_eids + 1
        site_tw = self._site_eids + 1
        rolled = False
        site_flow = cap[site_tw]
        for j in np.flatnonzero(site_flow > spare + 1e-15):
            self._cancel_at_site(int(j), float(site_flow[j] - spare[j]))
            rolled = True
        src_flow = cap[src_tw]
        for k in np.flatnonzero(src_flow > t_multi + 1e-15):
            self._cancel_at_job(int(k), float(src_flow[k] - t_multi[k]))
            rolled = True
        src_flow = np.minimum(cap[src_tw], t_multi)
        g.orig[self._source_eids] = t_multi
        cap[self._source_eids] = t_multi - src_flow
        cap[src_tw] = src_flow
        site_flow = np.minimum(cap[site_tw], spare)
        g.orig[self._site_eids] = spare
        cap[self._site_eids] = spare - site_flow
        cap[site_tw] = site_flow
        return rolled

    def _map_cut(
        self,
        reach: np.ndarray,
        t_eff: np.ndarray,
        capped: np.ndarray,
        overloaded: np.ndarray,
    ) -> tuple[frozenset[int], frozenset[int]]:
        """Min-cut source side of the reduced graph, mapped to full indices.

        A site overloaded by folded demand alone is source-side in the
        unreduced graph (some folded job keeps residual source capacity and
        an unsaturated edge into it), as is every folded job with a positive
        effective target at a source-side site — via the site's reverse arc
        when fully delivered, via its own source arc otherwise.  A *capped*
        folded job (target above its only demand cap) is source-side
        unconditionally, but its saturated edge exposes no site.
        """
        site0 = self._site0
        site_in = reach[site0 : site0 + self._m] | overloaded
        cut_sites = frozenset(int(j) for j in np.flatnonzero(site_in))
        jobs = {int(i) for i in self._multi_idx[reach[1 : 1 + self._multi_idx.size]]}
        if self._folded_idx.size:
            hit = capped | (site_in[self._folded_site] & (t_eff > ABS_TOL))
            jobs.update(int(i) for i in self._folded_idx[hit])
        return frozenset(jobs), cut_sites

    # ------------------------------------------------------------------
    # The probe
    # ------------------------------------------------------------------
    def probe(
        self, targets: np.ndarray, *, need_cut: bool = False, skip_screen: bool = False
    ) -> ProbeOutcome:
        """Feasibility verdict for one aggregate target vector.

        ``need_cut=True`` guarantees an infeasible verdict carries the
        *minimal* min cut from an actual flow solve (never a replayed
        screening cut) — required by the cutting-plane loop, which must see
        each site set at most once.  ``skip_screen=True`` is for callers
        that already evaluated the stored-cut screen at an equal-or-tighter
        margin (the GGT front-end) — re-running it here could only repeat
        the same ``None``.
        """
        if not TRACER.enabled:
            return self._probe_impl(targets, need_cut=need_cut, skip_screen=skip_screen)
        with span("flow.probe") as sp:
            out = self._probe_impl(targets, need_cut=need_cut, skip_screen=skip_screen)
            sp.args["mode"] = out.mode
            sp.args["feasible"] = out.feasible
        return out

    def _probe_impl(
        self, targets: np.ndarray, *, need_cut: bool = False, skip_screen: bool = False
    ) -> ProbeOutcome:
        targets = np.asarray(targets, dtype=float)
        st = self.stats
        st.probes += 1
        demanded = float(targets.sum())

        # Exact elementwise dominance: the feasible region is downward
        # closed, so ``targets <= last_feasible`` is a proof.  No tolerance
        # slack on ``_last_feasible`` — bisection probes sit ~1e-9 apart,
        # and a fuzzy accept here would flip verdicts the flow check (feq)
        # decides the other way.  The anchor (see
        # :meth:`set_dominance_anchor`) is a second, standing bound that
        # falling probe sequences cannot erode; it carries its own 1e-12
        # pad, three orders below that probe spacing.
        for bound, bound_deficit in ((self._last_feasible, 0.0), (self._anchor, self._anchor_deficit)):
            if (
                bound is not None
                and targets.shape == bound.shape
                and bound_deficit <= self._scale * max(ABS_TOL, REL_TOL * abs(demanded))
                and bool((targets <= bound).all())
            ):
                st.early_accepts += 1
                return ProbeOutcome(True, demanded, demanded, frozenset(), frozenset(), "early-accept")

        if self._screen and not need_cut and not skip_screen:
            rejected = self._screen_reject(targets, demanded)
            if rejected is not None:
                st.cut_rejects += 1
                return rejected

        delivered, t_eff, load, capped, overloaded, warm = self._flow_solve(targets)
        feasible = feq(delivered, demanded, scale=self._scale)
        if feasible and not need_cut:
            # A feasible probe's cut is the (near-empty) residual reach set;
            # no caller consumes it, so skip the reachability sweep.
            cut_jobs, cut_sites = frozenset(), frozenset()
        else:
            cut_jobs, cut_sites = self._map_cut(
                self._graph.reachable_from(self._src), t_eff, capped, overloaded
            )
        if feasible:
            self._last_feasible = targets.copy()
        elif cut_sites:
            self.observe_cut(cut_sites)  # future descending probes screen on it
        return ProbeOutcome(
            feasible, delivered, demanded, cut_jobs, cut_sites, "flow-warm" if warm else "flow-cold"
        )

    def _flow_solve(self, targets: np.ndarray):
        """Install ``targets`` (warm) and run max flow; the graph is left
        holding a maximum flow for exactly this vector (``_flow_targets``).
        """
        st = self.stats
        g = self._graph
        self._flow_serial += 1
        t_multi = targets[self._multi_idx]
        # Folded jobs deliver at most min(target, demand cap) through their
        # single site; the remainder is undeliverable regardless of flow.
        t_fold = targets[self._folded_idx]
        t_eff = np.minimum(t_fold, self._folded_cap)
        capped = t_fold > self._folded_cap + ABS_TOL * np.maximum(1.0, self._folded_cap)
        if self._folded_idx.size:
            load = np.bincount(self._folded_site, weights=t_eff, minlength=self._m)
        else:
            load = np.zeros(self._m)
        spare = np.maximum(self._capacities - load, 0.0)
        overloaded = load > self._capacities + ABS_TOL * np.maximum(1.0, self._capacities)

        warm = bool((g.cap[self._source_eids + 1] > 0.0).any())
        if self._install(t_multi, spare):
            st.rollbacks += 1
        # The flow can never exceed the source arcs' forward residual;
        # reaching that bound proves optimality without the final BFS.
        limit = float(g.cap[self._source_eids].sum())
        g.max_flow(self._src, self._snk, limit=limit)
        if warm:
            st.warm_solves += 1
        else:
            st.cold_solves += 1
        self._flow_targets = targets.copy()

        folded_delivered = float(np.minimum(load, self._capacities).sum())
        delivered = float(g.flows(self._source_eids).sum()) + folded_delivered
        return delivered, t_eff, load, capped, overloaded, warm

    # ------------------------------------------------------------------
    # Realization
    # ------------------------------------------------------------------
    def allocation_matrix(self, targets: np.ndarray) -> np.ndarray | None:
        """The ``(n, m)`` split of a max flow at ``targets``, or ``None``.

        If the residual graph is not already holding a flow for exactly
        ``targets`` (a later infeasible probe may have moved it), one warm
        re-solve restores it — still far cheaper than a cold realization.
        Returns ``None`` when ``targets`` turns out not to be fully
        deliverable (callers fall back to the legacy realization).
        """
        targets = np.asarray(targets, dtype=float)
        if targets.shape != (self._n,):
            return None
        synced = (
            self._flow_targets is not None
            and bool((targets == self._flow_targets).all())
        )
        if not synced:
            delivered, *_ = self._flow_solve(targets)
            if not feq(delivered, float(targets.sum()), scale=self._scale):
                return None
        alloc = np.zeros((self._n, self._m))
        if self._sup_eids.size:
            alloc[self._sup_job, self._sup_site] = self._graph.flows(self._sup_eids)
        if self._folded_idx.size:
            alloc[self._folded_idx, self._folded_site] = np.minimum(
                targets[self._folded_idx], self._folded_cap
            )
        return alloc
