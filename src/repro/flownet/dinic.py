"""Dinic's maximum-flow algorithm on :class:`~repro.flownet.graph.FlowGraph`.

Iterative BFS level graph + iterative DFS blocking flow (no recursion, so
instances with thousands of jobs do not hit Python's stack limit).  Float
capacities are handled with the library tolerance: an edge participates in a
phase only when its residual exceeds ``ABS_TOL``, which guarantees each
augmentation pushes a meaningful amount and the phase count stays at the
classic ``O(V)`` bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro._util import ABS_TOL
from repro.flownet.graph import INF, FlowGraph


@dataclass(slots=True)
class MaxFlowResult:
    """Outcome of a max-flow computation."""

    value: float
    #: node ids reachable from the source in the final residual graph
    #: (the source side of a minimum cut).
    source_side: frozenset[int]


class Dinic:
    """Max-flow solver bound to one graph; reusable across capacity updates."""

    def __init__(self, graph: FlowGraph):
        self.graph = graph

    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        g = self.graph
        level = [-1] * g.n_nodes
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            e = g.head[u]
            while e != -1:
                v = g.to[e]
                if level[v] < 0 and g.cap[e] > ABS_TOL:
                    level[v] = level[u] + 1
                    queue.append(v)
                e = g.nxt[e]
        return level if level[t] >= 0 else None

    def _blocking_flow(self, s: int, t: int, level: list[int], it: list[int]) -> float:
        """Push a blocking flow along the level graph; returns total pushed."""
        g = self.graph
        total = 0.0
        # Iterative DFS: stack of (node, edge-used-to-enter) plus path edges.
        path: list[int] = []  # edge indices along the current path
        u = s
        while True:
            if u == t:
                # push the bottleneck along `path`
                bottleneck = min(g.cap[e] for e in path)
                for e in path:
                    g.cap[e] -= bottleneck
                    g.cap[e ^ 1] += bottleneck
                total += bottleneck
                # retreat to the first saturated edge
                for k, e in enumerate(path):
                    if g.cap[e] <= ABS_TOL:
                        del path[k:]
                        break
                u = g.to[path[-1]] if path else s
                continue
            advanced = False
            e = it[u]
            while e != -1:
                v = g.to[e]
                if g.cap[e] > ABS_TOL and level[v] == level[u] + 1:
                    path.append(e)
                    u = v
                    advanced = True
                    break
                e = g.nxt[e]
                it[u] = e
            if advanced:
                continue
            # dead end: mark node unusable this phase and retreat
            level[u] = -1
            if not path:
                break
            last = path.pop()
            u = g.to[last ^ 1]
        return total

    # ------------------------------------------------------------------
    def max_flow(self, source: Hashable, sink: Hashable) -> MaxFlowResult:
        """Compute the maximum ``source -> sink`` flow on the current residual graph.

        The graph's residual capacities are left at the optimum, so callers
        can inspect flows via :meth:`FlowGraph.edge_flow` or continue with
        residual reachability queries.
        """
        g = self.graph
        s, t = g.node(source), g.node(sink)
        if s == t:
            return MaxFlowResult(INF, frozenset())
        value = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                break
            it = list(g.head)
            pushed = self._blocking_flow(s, t, level, it)
            if pushed <= ABS_TOL:
                break
            value += pushed
        return MaxFlowResult(value, self.reachable_from(s))

    def reachable_from(self, node_id: int) -> frozenset[int]:
        """Nodes reachable from ``node_id`` via residual edges above tolerance."""
        g = self.graph
        seen = [False] * g.n_nodes
        seen[node_id] = True
        queue = deque([node_id])
        while queue:
            u = queue.popleft()
            e = g.head[u]
            while e != -1:
                v = g.to[e]
                if not seen[v] and g.cap[e] > ABS_TOL:
                    seen[v] = True
                    queue.append(v)
                e = g.nxt[e]
        return frozenset(i for i, f in enumerate(seen) if f)

    def residual_path_exists(self, source: Hashable, sink: Hashable) -> bool:
        """Whether an augmenting path exists in the current residual graph."""
        g = self.graph
        if not (g.has_node(source) and g.has_node(sink)):
            return False
        return g.node(sink) in self.reachable_from(g.node(source))
