"""Array-native residual flow graph: the parametric engine's kernel.

Same paired-edge layout as :class:`repro.flownet.graph.FlowGraph` (edge
``e`` and its residual twin at ``e ^ 1``), but stored in numpy ``int32`` /
``float64`` arrays with a CSR adjacency, so the BFS level construction of
Dinic's algorithm — the phase that touches every edge — runs vectorized.
The blocking-flow DFS is inherently sequential; it runs over plain Python
lists (scalar indexing into numpy arrays is an order of magnitude slower
than list indexing) and syncs the capacity array back once per phase.

The structure is static after construction: nodes are dense integer ids
``0..n_nodes-1`` and the edge set is fixed.  Only capacities change, which
is exactly the shape of the parametric λ-probe workload
(:mod:`repro.flownet.parametric`): the k-th added edge has forward id
``2 * k`` and callers update ``cap`` / ``orig`` between solves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import ABS_TOL, require
from repro.obs.tracing import TRACER, span

__all__ = ["ArrayFlowGraph", "ContractedFlowGraph"]

# Below this many residual edges the scalar (list-based) BFS/DFS beats the
# vectorized path: per-frontier numpy dispatch dominates on small graphs.
_VECTOR_THRESHOLD = 4096


class ArrayFlowGraph:
    """A fixed-topology residual graph with vectorized max-flow.

    Parameters
    ----------
    n_nodes:
        Number of nodes; ids are ``0..n_nodes-1``.
    tails / heads / capacities:
        The directed edges.  Edge ``k`` gets forward id ``2 * k``; its
        residual twin (capacity 0) sits at ``2 * k + 1``.
    """

    __slots__ = (
        "n_nodes",
        "to",
        "cap",
        "orig",
        "indptr",
        "adj",
        "_to_list",
        "_adj_list",
        "_indptr_list",
    )

    def __init__(
        self,
        n_nodes: int,
        tails: Sequence[int],
        heads: Sequence[int],
        capacities: Sequence[float],
    ):
        tails_a = np.asarray(tails, dtype=np.int32)
        heads_a = np.asarray(heads, dtype=np.int32)
        caps_a = np.asarray(capacities, dtype=np.float64)
        require(tails_a.shape == heads_a.shape == caps_a.shape, "edge arrays must align")
        require(bool((caps_a >= 0.0).all()) if caps_a.size else True, "edge capacities must be non-negative")
        n_edges = tails_a.size
        self.n_nodes = int(n_nodes)

        to = np.empty(2 * n_edges, dtype=np.int32)
        to[0::2] = heads_a
        to[1::2] = tails_a
        cap = np.zeros(2 * n_edges, dtype=np.float64)
        cap[0::2] = caps_a
        self.to = to
        self.cap = cap
        self.orig = cap.copy()

        tail_of = np.empty(2 * n_edges, dtype=np.int32)
        tail_of[0::2] = tails_a
        tail_of[1::2] = heads_a
        self._build_adjacency(tail_of)

    def _build_adjacency(self, tail_of: np.ndarray) -> None:
        # CSR adjacency over the paired-edge array: adj[indptr[u]:indptr[u+1]]
        # lists every edge id (forward or twin) whose tail is u, in
        # *descending* insertion order — the order a head/next linked list
        # yields.  The order matters for speed, not correctness: bipartite
        # builders append the site->sink arc after all job->site arcs, so a
        # DFS that scans newest-first tries the sink arc before wading
        # through residual twins, and phases find augmenting paths sooner.
        rev = np.argsort(tail_of[::-1], kind="stable")
        self.adj = (tail_of.size - 1 - rev).astype(np.int32)
        counts = np.bincount(tail_of, minlength=self.n_nodes)
        self.indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])

        # list mirrors for the sequential blocking-flow inner loop
        self._to_list = self.to.tolist()
        self._adj_list = self.adj.tolist()
        self._indptr_list = self.indptr.tolist()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of directed edges added (residual twins not counted)."""
        return self.to.size // 2

    def reset_flow(self) -> None:
        """Restore all residual capacities to the original capacities."""
        self.cap[:] = self.orig

    def set_capacity(self, e: int, capacity: float) -> None:
        """Re-set forward edge ``e``'s capacity, discarding its flow."""
        require(capacity >= 0.0, "capacity must be non-negative")
        self.cap[e] = capacity
        self.orig[e] = capacity
        self.cap[e ^ 1] = 0.0
        self.orig[e ^ 1] = 0.0

    def increase_capacity(self, e: int, delta: float) -> None:
        """Raise forward edge ``e``'s capacity by ``delta``, keeping its flow."""
        require(delta >= 0.0, "capacity increase must be non-negative")
        self.cap[e] += delta
        self.orig[e] += delta

    def edge_flow(self, e: int) -> float:
        """Current flow on forward edge ``e`` (clamped non-negative)."""
        return float(max(self.cap[e ^ 1] - self.orig[e ^ 1], 0.0))

    def flows(self, eids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`edge_flow` over an array of forward edge ids."""
        tw = np.bitwise_xor(np.asarray(eids, dtype=np.int64), 1)
        return np.maximum(self.cap[tw] - self.orig[tw], 0.0)

    # ------------------------------------------------------------------
    # Contraction views (the GGT sweep's primitives)
    # ------------------------------------------------------------------
    def clone(self) -> "ArrayFlowGraph":
        """Independent capacity state over the *shared* immutable topology.

        ``cap`` / ``orig`` are copied (so flow evolves independently);
        ``to`` / ``adj`` / ``indptr`` and their list mirrors are shared —
        they never change after construction.
        """
        g = object.__new__(ArrayFlowGraph)
        g.n_nodes = self.n_nodes
        g.to = self.to
        g.cap = self.cap.copy()
        g.orig = self.orig.copy()
        g.indptr = self.indptr
        g.adj = self.adj
        g._to_list = self._to_list
        g._adj_list = self._adj_list
        g._indptr_list = self._indptr_list
        return g

    def contract(self, node_map: np.ndarray) -> "ContractedFlowGraph":
        """Node-contraction view: merge nodes per ``node_map``, compact edges.

        ``node_map[u]`` is the node that ``u`` becomes; a contracted group
        maps onto one representative (for the GGT sweep: the source side of
        a min cut onto the source, its complement onto the sink).  Edges
        interior to a contracted group become self-loops and are *dropped*
        — a twin pair is a self-loop exactly when both endpoints merge, so
        pairs drop together and the ``e ^ 1`` mate invariant survives the
        renumbering — which is what makes the divide-and-conquer cheap: a
        descendant view's flow work scales with its own side of the cut,
        not the full graph.  Node ids are kept (settled nodes just lose all
        incident edges), so reachability masks indexed by original node id
        stay valid in every descendant.

        Because edge ids change, each view carries ``eid_map``: the
        composed map from the *root* graph's paired-edge ids to this
        view's (``-1`` for dropped edges), so capacity bookkeeping keyed
        by root edge id (source arcs) can be translated in one gather.
        ``parent_eids`` holds the inverse view: this view's edges as
        paired-edge ids of the immediate parent, used by
        :meth:`ContractedFlowGraph.project_flow`.

        The view starts from a *copy* of the parent's current residual
        state — the "parent's flow carried down" of the divide-and-conquer.
        """
        node_map = np.asarray(node_map, dtype=np.int32)
        require(node_map.shape == (self.n_nodes,), "node_map must have one entry per node")
        idx = np.arange(self.to.size, dtype=np.int64)
        to_new = node_map[self.to]
        tail_new = to_new[idx ^ 1]  # tail of edge e is the head of its twin
        keep = to_new != tail_new
        kept = np.flatnonzero(keep)
        new_of = np.full(self.to.size, -1, dtype=np.int64)
        new_of[kept] = np.arange(kept.size, dtype=np.int64)
        g = object.__new__(ContractedFlowGraph)
        g.n_nodes = self.n_nodes
        g.to = to_new[kept]
        g.cap = self.cap[kept]
        g.orig = self.orig[kept]
        g._build_adjacency(tail_new[kept])
        g.parent = self
        g.node_map = node_map
        g.parent_eids = kept
        parent_map = getattr(self, "eid_map", None)
        if parent_map is None:
            g.eid_map = new_of
        else:
            composed = np.full(parent_map.size, -1, dtype=np.int64)
            valid = parent_map >= 0
            composed[valid] = new_of[parent_map[valid]]
            g.eid_map = composed
        return g

    # ------------------------------------------------------------------
    # Max-flow
    # ------------------------------------------------------------------
    def _frontier_edges(self, frontier: np.ndarray) -> np.ndarray:
        """Edge ids leaving every node of ``frontier``, gathered from CSR."""
        starts = self.indptr[frontier]
        counts = self.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int32)
        cum = np.cumsum(counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        return self.adj[np.repeat(starts, counts) + offsets]

    def _bfs_levels(self, s: int, t: int) -> np.ndarray | None:
        """Vectorized level construction; ``None`` when ``t`` is unreachable."""
        level = np.full(self.n_nodes, -1, dtype=np.int64)
        level[s] = 0
        frontier = np.array([s], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            eids = self._frontier_edges(frontier)
            if eids.size == 0:
                break
            heads = self.to[eids]
            usable = (self.cap[eids] > ABS_TOL) & (level[heads] < 0)
            nxt = np.unique(heads[usable])
            if nxt.size == 0:
                break
            level[nxt] = depth
            frontier = nxt.astype(np.int64)
        return level if level[t] >= 0 else None

    def _bfs_levels_py(self, s: int, t: int, cap: list[float]) -> list[int] | None:
        """List-based level construction for small graphs.

        Per-frontier numpy dispatch costs more than it saves below a few
        thousand edges — exactly the size of the per-probe bipartite graphs
        — so the scalar loop wins there (see _VECTOR_THRESHOLD).
        """
        to = self._to_list
        adj = self._adj_list
        indptr = self._indptr_list
        level = [-1] * self.n_nodes
        level[s] = 0
        frontier = [s]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                for pos in range(indptr[u], indptr[u + 1]):
                    e = adj[pos]
                    v = to[e]
                    if level[v] < 0 and cap[e] > ABS_TOL:
                        level[v] = depth
                        nxt.append(v)
            frontier = nxt
        return level if level[t] >= 0 else None

    def _blocking_flow(self, s: int, t: int, level: list[int], cap: list[float]) -> float:
        """Sequential DFS blocking flow over list mirrors (mutates ``cap``)."""
        to = self._to_list
        adj = self._adj_list
        indptr = self._indptr_list
        it = indptr[:-1].copy()  # per-node current-arc CSR position
        path: list[int] = []  # edge ids along the current path
        total = 0.0
        u = s
        while True:
            if u == t:
                bottleneck = min(cap[e] for e in path)
                for e in path:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                total += bottleneck
                # retreat to the first saturated edge
                for k, e in enumerate(path):
                    if cap[e] <= ABS_TOL:
                        del path[k:]
                        break
                u = to[path[-1]] if path else s
                continue
            pos = it[u]
            limit = indptr[u + 1]
            lvl_next = level[u] + 1
            while pos < limit:
                e = adj[pos]
                v = to[e]
                if cap[e] > ABS_TOL and level[v] == lvl_next:
                    break
                pos += 1
            it[u] = pos
            if pos < limit:  # advanced along edge e
                path.append(e)
                u = v
                continue
            # dead end: mark node unusable this phase and retreat
            level[u] = -1
            if not path:
                break
            last = path.pop()
            u = to[last ^ 1]
        return total

    def max_flow(self, s: int, t: int, limit: float | None = None) -> float:
        """Maximum additional ``s -> t`` flow on the current residual graph.

        Continues from whatever flow the capacities already carry (warm
        start); residual capacities are left at the optimum so callers can
        read flows and run reachability queries.

        ``limit`` is an upper bound the caller *knows* the answer cannot
        exceed (e.g. the summed residual of the source arcs).  Reaching it
        proves optimality without the final can't-reach-``t`` BFS — the
        main saving on feasible λ-probes, where the source always
        saturates.
        """
        if not TRACER.enabled:
            return self._max_flow_impl(s, t, limit)
        with span("flow.max_flow", edges=int(self.to.size) // 2) as sp:
            value = self._max_flow_impl(s, t, limit)
            sp.args["flow"] = value
        return value

    def _max_flow_impl(self, s: int, t: int, limit: float | None) -> float:
        total = 0.0
        if limit is not None and limit <= ABS_TOL:
            return total
        small = self.to.size <= _VECTOR_THRESHOLD
        cap_list = self.cap.tolist()
        try:
            while True:
                if small:
                    level = self._bfs_levels_py(s, t, cap_list)
                else:
                    self.cap[:] = cap_list
                    lv = self._bfs_levels(s, t)
                    level = None if lv is None else lv.tolist()
                if level is None:
                    return total
                pushed = self._blocking_flow(s, t, level, cap_list)
                if pushed <= ABS_TOL:
                    return total
                total += pushed
                if limit is not None and total >= limit - ABS_TOL:
                    return total
        finally:
            self.cap[:] = cap_list

    def reachable_from(self, s: int) -> np.ndarray:
        """Boolean mask of nodes reachable from ``s`` via residual edges.

        At max flow this is the source side of the *minimal* min cut, which
        is unique across all maximum flows — the invariant that makes the
        warm-started probes of :mod:`repro.flownet.parametric` return the
        same cuts as a cold solve.
        """
        if self.to.size <= _VECTOR_THRESHOLD:
            to = self._to_list
            adj = self._adj_list
            indptr = self._indptr_list
            cap = self.cap.tolist()
            seen = bytearray(self.n_nodes)
            seen[s] = 1
            stack = [s]
            while stack:
                u = stack.pop()
                for pos in range(indptr[u], indptr[u + 1]):
                    e = adj[pos]
                    v = to[e]
                    if not seen[v] and cap[e] > ABS_TOL:
                        seen[v] = 1
                        stack.append(v)
            return np.frombuffer(bytes(seen), dtype=np.uint8).astype(bool)
        seen = np.zeros(self.n_nodes, dtype=bool)
        seen[s] = True
        frontier = np.array([s], dtype=np.int64)
        while frontier.size:
            eids = self._frontier_edges(frontier)
            if eids.size == 0:
                break
            heads = self.to[eids]
            usable = (self.cap[eids] > ABS_TOL) & ~seen[heads]
            nxt = np.unique(heads[usable])
            if nxt.size == 0:
                break
            seen[nxt] = True
            frontier = nxt.astype(np.int64)
        return seen


class ContractedFlowGraph(ArrayFlowGraph):
    """An :meth:`ArrayFlowGraph.contract` view with a link to its parent."""

    __slots__ = ("parent", "node_map", "parent_eids", "eid_map")

    def live_edges(self) -> np.ndarray:
        """Boolean mask over the *parent's* paired-edge array of edges this
        view kept (i.e. edges that did not collapse into self-loops)."""
        live = np.zeros(self.parent.to.size, dtype=bool)
        live[self.parent_eids] = True
        return live

    def project_flow(self) -> np.ndarray:
        """Copy this view's per-edge residual state back onto the parent.

        Only edges the view kept are written; edges interior to a
        contracted group keep the parent's state.  Flow conservation at
        the individual nodes of a contracted group is the *caller's*
        obligation — the sweep only projects views whose contracted side
        had every crossing arc saturated, where the merged node absorbs no
        imbalance.  Returns the parent-edge mask of projected edges.
        """
        self.parent.cap[self.parent_eids] = self.cap
        self.parent.orig[self.parent_eids] = self.orig
        return self.live_edges()
