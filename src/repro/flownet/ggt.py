"""One-shot GGT parametric max-flow: every leximin breakpoint in one sweep.

The AMF progressive-filling loop asks a *parametric* question: for source
capacities ``t_i(λ) = clip(λ·w_i, f_i, c_i)`` rising with λ, where are the
breakpoints at which the minimal min cut of the job-site network jumps?
Gallo–Grigoriadis–Tarjan's observation is that for a monotone family the
min cuts at λ₁ < λ₂ are *nested*, which admits divide-and-conquer:

1. For an interval ``[lo, hi]`` with known endpoint minimal cuts
   ``X_lo ⊂ X_hi``,
   the cut-value difference ``C_lo(λ) - C_hi(λ)`` is a non-decreasing
   piecewise-linear function of λ (the jobs in ``X_hi \\ X_lo`` contribute
   ``+t_i(λ)``; everything else is constant), so their unique crossing λ*
   is found *exactly* by the solver's own event-sweep evaluator
   (:class:`~repro.core.amf.PiecewiseFill`) — no search.
2. One (warm) max flow at λ* yields the minimal cut ``X*``.  If ``X*``
   equals an endpoint cut, λ* is the lone breakpoint of the interval
   (concavity of the min-cut envelope pins the transition to the
   crossing).  Otherwise ``X_lo ⊂ X* ⊂ X_hi`` strictly, and each half
   recurses on a *contracted* graph — the settled side of the cut merged
   into the source (above λ*) or the sink (below λ*) via
   :meth:`~repro.flownet.arrayflow.ArrayFlowGraph.contract`, with the
   parent's flow carried down — so the total augmentation work stays close
   to one full max flow.

The sweep runs on the *unfolded* job-site network: degree-1 folding turns
sink capacities into λ-dependent quantities ``cap_j - load_j(λ)``, which
breaks the concavity the divide-and-conquer exploits.  Cuts are compared
and exported as job/site index sets, which are fold-invariant, so the
schedule drops straight into the folded :class:`ParametricFeasibility`.

Floors introduce convex kinks in ``t_i(λ)`` at ``f_i / w_i``; between
consecutive floor kinks every cut-value function is concave, so the sweep
partitions ``[0, λ_top]`` at the kinks and recurses per segment (zero extra
cost in the common floor-free case).

:class:`GgtFeasibility` turns the schedule into a drop-in feasibility
oracle for ``oracle="ggt"``: the first probe triggers the sweep, seeds the
complete nested cut family into the shared Gale–Hoffman screen, flow-
verifies the schedule's level vector once, and pins it as a standing
dominance anchor — after which every feasible probe on the fill trajectory
and every screened bisection probe is answered analytically, with zero
flows.  Only ``need_cut=True`` infeasible probes (cut discovery) still pay
a warm flow, because the cutting-plane loop requires the *minimal* min
cut of an actual flow solve.  Verdicts are bit-identical to the plain
parametric oracle: dominance accepts only flow-verified-dominated vectors,
the screen keeps its 2x tolerance margin, and flow probes are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._util import ABS_TOL, REL_TOL, require
from repro.flownet.arrayflow import ArrayFlowGraph
from repro.flownet.parametric import ParametricFeasibility, ProbeOutcome
from repro.model.cluster import Cluster
from repro.obs.tracing import TRACER, span

__all__ = ["GgtSweep", "GgtFeasibility", "GgtStats", "SweepSchedule"]


@dataclass(slots=True)
class GgtStats:
    """How the sweep earned (and then spent) its one-shot schedule."""

    sweeps: int = 0  # GgtSweep.run() invocations
    sweep_flows: int = 0  # max-flow solves paid by the sweep (incl. contracted)
    contractions: int = 0  # contracted subgraph views built
    max_depth: int = 0  # deepest divide-and-conquer recursion reached
    breakpoints: int = 0  # distinct leximin breakpoints recovered
    flows_avoided: int = 0  # post-sweep probes answered without a flow solve
    schedule_rejected: int = 0  # sweeps whose level vector failed verification


@dataclass(frozen=True)
class SweepSchedule:
    """The full λ→breakpoint schedule of one parametric sweep.

    ``breakpoints[k]`` is the λ at which the jobs of
    ``cut_jobs[k] \\ cut_jobs[k-1]`` freeze; the cut sequences are nested
    (GGT).  ``levels`` replays the schedule analytically:
    ``levels[i] = clip(λ_freeze(i) · w_i, f_i, c_i)``, with never-frozen
    jobs at their aggregate demand cap.
    """

    breakpoints: tuple[float, ...]
    cut_jobs: tuple[frozenset[int], ...]
    cut_sites: tuple[frozenset[int], ...]
    levels: np.ndarray


_EMPTY_CUT = (frozenset(), frozenset())

# Analytic-reject margin for the post-sweep oracle, in units of the flow
# accept slack.  A reject needs the stored-cut excess to provably exceed the
# feq boundary; screen excess and flow deficit are the same exact quantity
# computed through different float summations, and their divergence is
# bounded by ~n·eps relative to the demanded sum while the slack is
# ``(n+m)·REL_TOL`` relative — a ratio of at most eps/REL_TOL ≈ 2e-7.  The
# 1e-3 headroom is therefore ~4000x the worst-case noise.  (The shared
# ParametricFeasibility screen keeps its historical 2x margin; this tighter
# bound only arms probes made through GgtFeasibility, whose sweep guarantees
# the binding cut is stored.)
_SCREEN_MARGIN = 1.001


class GgtSweep:
    """Divide-and-conquer breakpoint sweep over one cluster.

    Parameters
    ----------
    cluster:
        The instance; ``t_i(λ) = clip(λ·w_i, floors_i, aggregate_demand_i)``
        is the parametric source-capacity family.
    floors:
        Optional per-job guaranteed aggregates (enhanced AMF).  Each
        distinct positive kink ``f_i / w_i`` adds one segment boundary.
    stats:
        Optional shared :class:`GgtStats` to accumulate into.
    """

    def __init__(
        self,
        cluster: Cluster,
        floors: np.ndarray | None = None,
        *,
        stats: GgtStats | None = None,
    ):
        self.cluster = cluster
        self.stats = stats if stats is not None else GgtStats()
        n, m = cluster.n_jobs, cluster.n_sites
        self._n, self._m = n, m
        self._caps = cluster.aggregate_demand.copy()
        self._weights = cluster.weights
        if floors is None:
            self._floors = np.zeros(n)
        else:
            self._floors = np.minimum(np.maximum(np.asarray(floors, dtype=float), 0.0), self._caps)
        self._capacities = cluster.capacities
        self._dcaps = cluster.demand_caps

        # Unfolded network: src=0, jobs 1..n, sites n+1..n+m, snk last.
        # Source arcs first so job i's forward arc keeps edge id 2*i in
        # every contracted descendant view.
        self._src = 0
        self._snk = n + m + 1
        tails: list[int] = []
        heads: list[int] = []
        caps_e: list[float] = []
        for i in range(n):
            tails.append(self._src)
            heads.append(1 + i)
            caps_e.append(0.0)
        support = cluster.support
        for i in range(n):
            for j in np.flatnonzero(support[i]):
                tails.append(1 + i)
                heads.append(1 + n + int(j))
                caps_e.append(float(self._dcaps[i, int(j)]))
        for j in range(m):
            tails.append(1 + n + j)
            heads.append(self._snk)
            caps_e.append(float(self._capacities[j]))
        self._graph = ArrayFlowGraph(self._snk + 1, tails, heads, caps_e)
        self._source_eids = np.arange(n, dtype=np.int64) * 2
        self._job_nodes = 1 + np.arange(n, dtype=np.int64)
        self._site_nodes = 1 + n + np.arange(m, dtype=np.int64)

        self._freeze = np.full(n, np.nan)
        self._transitions: list[tuple[float, frozenset[int], frozenset[int]]] = []
        self._family: dict[frozenset[int], None] = {}

    # ------------------------------------------------------------------
    # Parametric capacity installation + one warm solve
    # ------------------------------------------------------------------
    def _targets(self, lam: float) -> np.ndarray:
        return np.clip(lam * self._weights, self._floors, self._caps)

    def _install(self, g: ArrayFlowGraph, live: np.ndarray, lam: float, lam_old: float | None) -> None:
        """Raise live source-arc capacities from ``t(lam_old)`` to ``t(lam)``."""
        t_new = self._targets(lam)
        t_old = self._targets(lam_old) if lam_old is not None else np.zeros(self._n)
        delta = np.maximum(t_new - t_old, 0.0)[live]
        eids = self._source_eids[live]
        emap = getattr(g, "eid_map", None)
        if emap is not None:
            # contracted view: translate root source-arc ids; a live job's
            # arc only drops when the job merged into the source, and the
            # recursion removes such jobs from ``live`` first
            eids = emap[eids]
            kept = eids >= 0
            eids = eids[kept]
            delta = delta[kept]
        g.cap[eids] += delta
        g.orig[eids] += delta

    def _solve(self, g: ArrayFlowGraph, depth: int) -> np.ndarray:
        """Warm max flow on ``g``; returns the source-side reach mask.

        The limit is the summed residual out of the source node — on a
        contracted view that row also holds absorbed crossing arcs and
        residual twins of arcs into the merged source, so it over-estimates
        (the shortcut fires less often) but never under-estimates (which
        would stop early).
        """
        st = self.stats
        row = g.adj[g.indptr[0] : g.indptr[1]]
        limit = float(g.cap[row].sum())
        g.max_flow(self._src, self._snk, limit=limit)
        st.sweep_flows += 1
        st.max_depth = max(st.max_depth, depth)
        return g.reachable_from(self._src)

    def _cut_of(
        self, reach: np.ndarray, absorbed: tuple[frozenset[int], frozenset[int]]
    ) -> tuple[frozenset[int], frozenset[int]]:
        jobs = frozenset(int(i) for i in np.flatnonzero(reach[self._job_nodes])) | absorbed[0]
        sites = frozenset(int(j) for j in np.flatnonzero(reach[self._site_nodes])) | absorbed[1]
        return jobs, sites

    # ------------------------------------------------------------------
    # Exact cut-line crossing
    # ------------------------------------------------------------------
    def _cut_const(self, cut: tuple[frozenset[int], frozenset[int]]) -> float:
        """λ-independent part of cut value: crossing demand + site capacity."""
        jobs, sites = cut
        cap_sum = float(self._capacities[sorted(sites)].sum()) if sites else 0.0
        if not jobs:
            return cap_sum
        outside = np.ones(self._m, dtype=bool)
        if sites:
            outside[list(sites)] = False
        rows = np.fromiter(jobs, dtype=np.int64)
        return cap_sum + float(self._dcaps[rows][:, outside].sum())

    def _crossing(
        self,
        cut_lo: tuple[frozenset[int], frozenset[int]],
        cut_hi: tuple[frozenset[int], frozenset[int]],
    ) -> float | None:
        """Unique λ where the two endpoint cut-value lines meet, or ``None``
        for a site-only transition (no job levels change)."""
        delta_jobs = sorted(cut_hi[0] - cut_lo[0])
        if not delta_jobs:
            return None
        # C_lo(λ) - C_hi(λ) = Σ_{ΔJ} t_i(λ) + Δconst, non-decreasing; the
        # crossing is sup { λ : Σ_{ΔJ} t_i(λ) <= -Δconst } — exactly the
        # solver's PiecewiseFill.max_level query.
        from repro.core.amf import PiecewiseFill

        dconst = self._cut_const(cut_lo) - self._cut_const(cut_hi)
        idx = np.asarray(delta_jobs, dtype=np.int64)
        fill = PiecewiseFill(self._floors[idx], self._caps[idx], self._weights[idx])
        return float(fill.max_level(-dconst))

    # ------------------------------------------------------------------
    # Schedule recording
    # ------------------------------------------------------------------
    def _note_cut(self, cut: tuple[frozenset[int], frozenset[int]]) -> None:
        if cut[1]:
            self._family.setdefault(cut[1], None)

    def _record(
        self,
        lam: float,
        cut_lo: tuple[frozenset[int], frozenset[int]],
        cut_hi: tuple[frozenset[int], frozenset[int]],
    ) -> None:
        """One breakpoint: the jobs of ``cut_hi \\ cut_lo`` freeze at λ."""
        new_jobs = cut_hi[0] - cut_lo[0]
        fresh = [i for i in new_jobs if np.isnan(self._freeze[i])]
        if not fresh:
            return
        for i in fresh:
            self._freeze[i] = lam
        self._transitions.append((lam, frozenset(fresh), cut_hi[1]))
        self._note_cut(cut_hi)

    # ------------------------------------------------------------------
    # Divide and conquer
    # ------------------------------------------------------------------
    def _recurse(
        self,
        g: ArrayFlowGraph,
        live: np.ndarray,
        absorbed: tuple[frozenset[int], frozenset[int]],
        lo: float,
        hi: float,
        cut_lo: tuple[frozenset[int], frozenset[int]],
        cut_hi: tuple[frozenset[int], frozenset[int]],
        depth: int,
    ) -> None:
        """All breakpoints in ``(lo, hi]``; ``g`` holds a max flow at ``lo``."""
        if cut_lo == cut_hi:
            return
        lam = self._crossing(cut_lo, cut_hi)
        if lam is None:
            # site-only transition: cuts differ, job levels don't
            self._note_cut(cut_hi)
            return
        if not np.isfinite(lam) or not (lo < lam < hi) or depth > self._n + self._m + 8:
            # degenerate crossing (tie at an endpoint, float collapse):
            # the transition is a single breakpoint at the clamped crossing
            self._record(min(max(lam, lo), hi) if np.isfinite(lam) else hi, cut_lo, cut_hi)
            return
        snap_cap = g.cap.copy()
        snap_orig = g.orig.copy()
        self._install(g, live, lam, lo)
        reach = self._solve(g, depth)
        cut_mid = self._cut_of(reach, absorbed)
        if cut_mid == cut_lo or cut_mid == cut_hi:
            # the envelope touches the crossing: λ* is the interval's lone
            # breakpoint (concavity within a floor-kink-free segment)
            self._record(lam, cut_lo, cut_hi)
            return
        self._note_cut(cut_mid)
        st = self.stats
        # upper half: the settled source side contracts into the source,
        # carrying the λ* flow down
        node_map = np.arange(g.n_nodes, dtype=np.int32)
        node_map[reach] = self._src
        upper = g.contract(node_map)
        st.contractions += 1
        live_up = live.copy()
        if cut_mid[0]:
            live_up[np.fromiter(cut_mid[0], dtype=np.int64)] = False
        self._recurse(upper, live_up, cut_mid, lam, hi, cut_mid, cut_hi, depth + 1)
        # lower half: restore the flow at lo, contract the settled sink side
        g.cap[:] = snap_cap
        g.orig[:] = snap_orig
        node_map = np.arange(g.n_nodes, dtype=np.int32)
        node_map[~reach] = self._snk
        lower = g.contract(node_map)
        st.contractions += 1
        self._recurse(lower, live, absorbed, lo, lam, cut_lo, cut_mid, depth + 1)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> SweepSchedule:
        if not TRACER.enabled:
            return self._run_impl()
        with span("ggt.sweep", jobs=self._n, sites=self._m) as sp:
            schedule = self._run_impl()
            sp.args["breakpoints"] = len(schedule.breakpoints)
        return schedule

    def _run_impl(self) -> SweepSchedule:
        st = self.stats
        st.sweeps += 1
        n = self._n
        if n == 0:
            return SweepSchedule((), (), (), np.zeros(0))
        live = np.ones(n, dtype=bool)
        g = self._graph
        top = float((self._caps / self._weights).max(initial=0.0))

        # λ = 0: floors only.  With all-zero floors every source arc has
        # zero capacity, so the max flow is zero and the residual reach is
        # exactly {src} — no solve needed.
        self._install(g, live, 0.0, None)
        if bool((self._floors <= 0.0).all()):
            reach = np.zeros(g.n_nodes, dtype=bool)
            reach[self._src] = True
        else:
            reach = self._solve(g, 0)
        cut0 = self._cut_of(reach, _EMPTY_CUT)
        if cut0[0]:
            # floors already pin a cut: those jobs freeze at λ = 0
            self._record(0.0, _EMPTY_CUT, cut0)

        # segment boundaries: floor kinks (where concavity breaks) + λ_top
        with np.errstate(divide="ignore", invalid="ignore"):
            kinks = self._floors / self._weights
        bounds = sorted({float(k) for k in kinks if 0.0 < k < top})
        if top > 0.0:
            bounds.append(top)
        prev_lam, prev_cut = 0.0, cut0
        for b in bounds:
            snap_cap = g.cap.copy()
            snap_orig = g.orig.copy()
            self._install(g, live, b, prev_lam)
            reach = self._solve(g, 0)
            cut_b = self._cut_of(reach, _EMPTY_CUT)
            self._note_cut(cut_b)
            if cut_b != prev_cut:
                child = g.clone()
                child.cap[:] = snap_cap
                child.orig[:] = snap_orig
                self._recurse(child, live, _EMPTY_CUT, prev_lam, b, prev_cut, cut_b, 1)
            prev_lam, prev_cut = b, cut_b

        levels = self._caps.copy()
        frozen = ~np.isnan(self._freeze)
        levels[frozen] = np.clip(
            self._freeze[frozen] * self._weights[frozen], self._floors[frozen], self._caps[frozen]
        )
        self._transitions.sort(key=lambda t: t[0])
        st.breakpoints += len(self._transitions)
        cum: set[int] = set()
        breakpoints: list[float] = []
        cut_jobs: list[frozenset[int]] = []
        cut_sites: list[frozenset[int]] = []
        for lam, jobs, sites in self._transitions:
            cum |= jobs
            breakpoints.append(lam)
            cut_jobs.append(frozenset(cum))
            cut_sites.append(sites)
        return SweepSchedule(tuple(breakpoints), tuple(cut_jobs), tuple(cut_sites), levels)

    @property
    def cut_family(self) -> tuple[frozenset[int], ...]:
        """Every distinct source-side site set the sweep encountered."""
        return tuple(self._family)


class GgtFeasibility:
    """``oracle="ggt"``: the parametric oracle pre-armed by one GGT sweep.

    A drop-in for :class:`ParametricFeasibility` (same ``probe`` /
    ``observe_cut`` / ``allocation_matrix`` / ``stats`` surface).  The
    first probe triggers the sweep; its complete nested cut family seeds
    the Gale–Hoffman screen, and its level vector — flow-verified once —
    becomes a standing dominance anchor.  From then on the AMF fill loop's
    feasible probes and bisection's screened probes are answered with zero
    flow solves; only ``need_cut=True`` cut discovery still reaches the
    (warm) graph.  Verdict bit-identity with ``oracle="parametric"`` is
    inherited, not re-proven: every analytic answer goes through the same
    dominance / screening predicates the parametric oracle already uses,
    and a schedule that fails its verification probe is simply dropped
    (``schedule_rejected``), degrading to plain parametric behaviour.
    """

    def __init__(
        self,
        cluster: Cluster,
        cut_sets: Iterable[frozenset[int]] = (),
        *,
        floors: np.ndarray | None = None,
        ggt_stats: GgtStats | None = None,
    ):
        self.cluster = cluster
        self._pf = ParametricFeasibility(cluster, cut_sets)
        self.stats = self._pf.stats  # shared ProbeStats; adapters read .stats
        self.ggt = ggt_stats if ggt_stats is not None else GgtStats()
        self._floors = floors
        self._swept = False
        self.schedule: SweepSchedule | None = None
        # Standing dominance bound = elementwise max of the schedule's
        # flow-verified level vector and every flow-verified feasible probe
        # since.  Max-flow is 1-Lipschitz in the source capacities, so the
        # bound's deficit is at most the schedule's own plus the L1 mass of
        # the bound's excess over the schedule — a budget recomputed from
        # the geometry each update, never event-accumulated.  On the fill /
        # bisect trajectories the excess stays tiny (accepted levels sit at
        # most a flow tolerance above the exact breakpoints), so the budget
        # holds well under the accept slack; an adversarial probe far above
        # the schedule simply inflates the budget past the slack and
        # dominance accepts stop — sound either way.
        self._sched: np.ndarray | None = None
        self._sched_deficit = 0.0
        self._over: np.ndarray | None = None
        # Repeat-probe memo: (targets bytes, flow serial, outcome) of the
        # last flow-decided probe.  Bisection re-probes its final
        # infeasible mid verbatim as the ``need_cut`` pivot; with no flow
        # solve in between (serial unchanged) the graph state is
        # identical, so re-solving is a deterministic no-op — installing
        # the same targets changes no capacity, the BFS finds no
        # augmenting path, and the minimal cut comes out the same.
        self._last_flow: tuple[bytes, int, ProbeOutcome] | None = None

    def _ensure_sweep(self) -> None:
        if self._swept:
            return
        self._swept = True
        sweep = GgtSweep(self.cluster, self._floors, stats=self.ggt)
        schedule = sweep.run()
        self.schedule = schedule
        for sites in sweep.cut_family:
            self._pf.observe_cut(sites)
        if self.cluster.n_jobs == 0:
            return
        out = self._pf.probe(schedule.levels)
        if out.feasible:
            self._sched = schedule.levels.copy()
            self._sched_deficit = max(0.0, out.demanded - out.flow_value)
            self._over = self._sched.copy()
            self._pf.set_dominance_anchor(self._sched, deficit=self._sched_deficit)
        else:
            # tolerance edge (or infeasible floors): keep the cut family,
            # drop the anchor — probes fall back to plain parametric
            self.ggt.schedule_rejected += 1

    def probe(self, targets: np.ndarray, *, need_cut: bool = False) -> ProbeOutcome:
        self._ensure_sweep()
        st = self._pf.stats
        tb = np.asarray(targets, dtype=float).tobytes()
        cached = self._last_flow
        if cached is not None and cached[0] == tb and cached[1] == self._pf._flow_serial:
            st.probes += 1
            self.ggt.flows_avoided += 1
            return cached[2]
        arr = np.asarray(targets, dtype=float)
        if self._over is not None and arr.shape == self._over.shape:
            # Generalized dominance: max-flow deficit is 1-Lipschitz in the
            # targets, so deficit(arr) <= deficit(over) + L1 mass of arr's
            # excess over the bound, and deficit(over) is itself certified
            # by the bound's L1 distance to the flow-verified schedule.
            # Accepting requires the whole budget to clear the probe's feq
            # slack with _SCREEN_MARGIN headroom; the excess is then folded
            # into the bound and the budget *recomputed from the geometry*
            # (never event-accumulated), so accepted probes tighten future
            # budgets at most to their own certified mass.  Bisection's
            # round pivots — accepted up to a flow tolerance above the
            # exact breakpoint, coordinatewise beyond the schedule — are
            # exactly the probes this covers.
            demanded = float(arr.sum())
            slack = self._pf._scale * max(ABS_TOL, REL_TOL * abs(demanded))
            excess = float(np.maximum(arr - self._over, 0.0).sum())
            budget = self._sched_deficit + float(
                np.maximum(self._over - self._sched, 0.0).sum()
            )
            if budget + excess <= (2.0 - _SCREEN_MARGIN) * slack:
                if excess > 0.0:
                    np.maximum(self._over, arr, out=self._over)
                    self._pf.set_dominance_anchor(self._over, deficit=budget + excess)
                st.probes += 1
                st.early_accepts += 1
                self.ggt.flows_avoided += 1
                return ProbeOutcome(True, demanded, demanded, frozenset(), frozenset(), "early-accept")
        pre_screened = not need_cut and self._swept and self._pf._screen
        if pre_screened:
            # Tighter analytic reject than the shared 2x screen (see
            # _SCREEN_MARGIN): the sweep seeded the complete nested cut
            # family, so the binding cut is stored and the excess it
            # certifies tracks the flow's deficit to float-summation noise.
            # The verdict is the one the flow would return; the cut payload
            # is certified (a genuinely violated stored cut), and callers
            # needing the *minimal* cut ask with need_cut=True.
            rejected = self._pf._screen_reject(arr, float(arr.sum()), margin=_SCREEN_MARGIN)
            if rejected is not None:
                st.probes += 1
                st.cut_rejects += 1
                self.ggt.flows_avoided += 1
                return rejected
        before = st.early_accepts + st.cut_rejects
        out = self._pf.probe(targets, need_cut=need_cut, skip_screen=bool(pre_screened))
        if out.mode.startswith("flow"):
            self._last_flow = (tb, self._pf._flow_serial, out)
        if st.early_accepts + st.cut_rejects > before:
            self.ggt.flows_avoided += 1
        elif out.feasible and out.mode.startswith("flow") and self._over is not None:
            # Fold a *flow-verified* feasible probe into the cumulative
            # bound as well — its excess mass is certified by the flow.
            np.maximum(self._over, arr, out=self._over)
            budget = self._sched_deficit + float(
                np.maximum(self._over - self._sched, 0.0).sum()
            )
            self._pf.set_dominance_anchor(self._over, deficit=budget)
        return out

    def observe_cut(self, sites: Iterable[int]) -> None:
        self._pf.observe_cut(sites)

    def allocation_matrix(self, targets: np.ndarray) -> np.ndarray | None:
        return self._pf.allocation_matrix(targets)

    def set_dominance_anchor(self, targets: np.ndarray) -> None:
        self._pf.set_dominance_anchor(targets)


def sweep_levels(cluster: Cluster, floors: np.ndarray | None = None) -> np.ndarray:
    """The schedule's analytic level vector (test/benchmark convenience)."""
    require(cluster.n_jobs >= 0, "cluster required")
    return GgtSweep(cluster, floors).run().levels
