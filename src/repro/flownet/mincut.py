"""Minimum-cut extraction helpers.

After a max-flow, the nodes reachable from the source in the residual graph
form the source side of a minimum cut (max-flow/min-cut duality).  The AMF
solver uses this partition to identify the *bottleneck* of a progressive
filling round exactly; see :mod:`repro.core.amf`.
"""

from __future__ import annotations

from typing import Hashable

from repro.flownet.dinic import Dinic
from repro.flownet.graph import FlowGraph


def min_cut_partition(graph: FlowGraph, source: Hashable, sink: Hashable) -> tuple[frozenset, frozenset]:
    """Run max-flow and return the min-cut partition as node *keys*.

    Returns ``(source_side, sink_side)``.  The graph is left with the
    optimal flow installed.
    """
    result = Dinic(graph).max_flow(source, sink)
    src_keys = frozenset(graph.key_of(i) for i in result.source_side)
    all_keys = frozenset(graph.key_of(i) for i in range(graph.n_nodes))
    return src_keys, all_keys - src_keys


def cut_capacity(graph: FlowGraph, source_side: frozenset) -> float:
    """Capacity of the cut induced by ``source_side`` (node keys).

    Provided for verification in tests: for a min cut this equals the
    max-flow value.
    """
    side_ids = {graph.node(k) for k in source_side}
    total = 0.0
    for u in side_ids:
        e = graph.head[u]
        while e != -1:
            # original forward edges only (even indices)
            if e % 2 == 0 and graph.to[e] not in side_ids:
                total += graph._orig_cap[e]
            e = graph.nxt[e]
    return total
