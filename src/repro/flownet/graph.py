"""Residual flow graph with hashable node keys.

Edges are stored in the classic paired layout: edge ``e`` and its residual
twin ``e ^ 1`` sit at adjacent indices, so pushing ``f`` units along ``e``
is ``cap[e] -= f; cap[e ^ 1] += f``.  Capacities are floats; a single
tolerance (:data:`repro._util.ABS_TOL`) decides which residual edges are
considered usable, which keeps Dinic's phases terminating despite rounding.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro._util import ABS_TOL, require

INF = float("inf")


class FlowGraph:
    """A directed graph with float capacities, built for max-flow.

    Nodes are arbitrary hashable keys (the solvers use tuples like
    ``("job", 3)``), mapped internally to dense integer ids.
    """

    __slots__ = ("_ids", "_keys", "head", "nxt", "to", "cap", "_orig_cap")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._keys: list[Hashable] = []
        self.head: list[int] = []  # per-node first edge index (-1 = none)
        self.nxt: list[int] = []  # per-edge next edge index in the node's list
        self.to: list[int] = []  # per-edge target node id
        self.cap: list[float] = []  # per-edge residual capacity
        self._orig_cap: list[float] = []  # per-edge original capacity

    # ------------------------------------------------------------------
    def node(self, key: Hashable) -> int:
        """Return the integer id for ``key``, creating the node if needed."""
        nid = self._ids.get(key)
        if nid is None:
            nid = len(self._keys)
            self._ids[key] = nid
            self._keys.append(key)
            self.head.append(-1)
        return nid

    def key_of(self, nid: int) -> Hashable:
        return self._keys[nid]

    def has_node(self, key: Hashable) -> bool:
        return key in self._ids

    @property
    def n_nodes(self) -> int:
        return len(self._keys)

    @property
    def n_edges(self) -> int:
        """Number of directed edges added (residual twins not counted)."""
        return len(self.to) // 2

    # ------------------------------------------------------------------
    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> int:
        """Add a directed edge ``u -> v``; returns its edge index.

        The residual twin (capacity 0) is created automatically at index
        ``e ^ 1``.  ``capacity`` may be ``inf``.
        """
        require(capacity >= 0.0, f"edge capacity must be non-negative, got {capacity}")
        ui, vi = self.node(u), self.node(v)
        e = len(self.to)
        # forward edge
        self.to.append(vi)
        self.cap.append(capacity)
        self._orig_cap.append(capacity)
        self.nxt.append(self.head[ui])
        self.head[ui] = e
        # residual twin
        self.to.append(ui)
        self.cap.append(0.0)
        self._orig_cap.append(0.0)
        self.nxt.append(self.head[vi])
        self.head[vi] = e + 1
        return e

    def edge_flow(self, e: int) -> float:
        """Current flow on forward edge ``e`` (clamped into ``[0, cap]``)."""
        f = self.cap[e ^ 1] - self._orig_cap[e ^ 1]
        if f < 0.0:
            return 0.0
        orig = self._orig_cap[e]
        return min(f, orig) if orig != INF else f

    def residual(self, e: int) -> float:
        return self.cap[e]

    def usable(self, e: int) -> bool:
        """Whether edge ``e`` has residual capacity beyond tolerance."""
        return self.cap[e] > ABS_TOL

    def out_edges(self, nid: int) -> Iterator[int]:
        """Iterate edge indices (forward and residual) leaving node ``nid``."""
        e = self.head[nid]
        while e != -1:
            yield e
            e = self.nxt[e]

    def reset_flow(self) -> None:
        """Restore all residual capacities to the original capacities."""
        self.cap[:] = self._orig_cap[:]

    def set_capacity(self, e: int, capacity: float) -> None:
        """Re-set the capacity of forward edge ``e``, discarding its flow.

        Only valid between solves (callers must :meth:`reset_flow` first or
        accept that existing flow is wiped on this edge pair).
        """
        require(capacity >= 0.0, "capacity must be non-negative")
        self.cap[e] = capacity
        self._orig_cap[e] = capacity
        self.cap[e ^ 1] = 0.0
        self._orig_cap[e ^ 1] = 0.0

    def capacity_of(self, e: int) -> float:
        """Original capacity of forward edge ``e``."""
        return self._orig_cap[e]

    def increase_capacity(self, e: int, delta: float) -> None:
        """Raise the capacity of forward edge ``e`` by ``delta``, keeping its flow.

        Safe mid-solve: raising capacity only adds residual, so any current
        flow remains feasible and max-flow can continue incrementally.
        """
        require(delta >= 0.0, "capacity increase must be non-negative")
        self.cap[e] += delta
        self._orig_cap[e] += delta
