"""Job-site feasibility networks.

Every static policy question in this library reduces to flows on the same
bipartite network::

    SRC --A_i--> job_i --d_ij--> site_j --c_j--> SNK

An aggregate target vector ``A`` is feasible iff the max flow equals
``sum(A)``; the min cut at an infeasible vector names the binding bottleneck.
This module owns that network shape so the AMF solver, the Pareto checker
and the completion-time add-on all agree on node keys and tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import feq
from repro.flownet.dinic import Dinic
from repro.flownet.graph import FlowGraph
from repro.model.cluster import Cluster

SRC = ("src",)
SNK = ("snk",)


def job_key(i: int) -> tuple[str, int]:
    return ("job", i)


def site_key(j: int) -> tuple[str, int]:
    return ("site", j)


@dataclass(slots=True)
class FeasibilityNetwork:
    """A reusable job-site network bound to one cluster.

    ``source_edges[i]`` is the edge id of ``SRC -> job_i`` so the AMF solver
    can sweep target vectors without rebuilding the graph (edge-capacity
    updates + :meth:`FlowGraph.reset_flow` between solves).
    """

    cluster: Cluster
    graph: FlowGraph
    source_edges: list[int]
    support_edges: dict[tuple[int, int], int]

    def set_targets(self, targets: np.ndarray) -> None:
        """Install aggregate targets as source-edge capacities.

        When every target is (weakly) above the currently installed one, the
        existing flow is *kept* and only residual capacity is added — the
        subsequent :meth:`solve` then augments incrementally, which is what
        makes the AMF progressive-filling rounds cheap.  Any decrease forces
        a full reset.
        """
        g = self.graph
        deltas = [float(targets[i]) - g.capacity_of(eid) for i, eid in enumerate(self.source_edges)]
        if all(d >= -1e-15 for d in deltas):
            for eid, d in zip(self.source_edges, deltas):
                if d > 0.0:
                    g.increase_capacity(eid, d)
            return
        g.reset_flow()
        for i, eid in enumerate(self.source_edges):
            g.set_capacity(eid, float(targets[i]))

    def solve(self) -> "FeasibilityOutcome":
        """Run max-flow against the currently installed targets (incremental)."""
        result = Dinic(self.graph).max_flow(SRC, SNK)
        demanded = sum(self.graph._orig_cap[eid] for eid in self.source_edges)
        delivered = sum(self.graph.edge_flow(eid) for eid in self.source_edges)
        cut_keys = frozenset(self.graph.key_of(n) for n in result.source_side)
        scale = max(1.0, float(self.cluster.n_jobs + self.cluster.n_sites))
        return FeasibilityOutcome(
            feasible=feq(delivered, demanded, scale=scale),
            flow_value=delivered,
            demanded=demanded,
            cut_jobs=frozenset(k[1] for k in cut_keys if isinstance(k, tuple) and k[0] == "job"),
            cut_sites=frozenset(k[1] for k in cut_keys if isinstance(k, tuple) and k[0] == "site"),
        )

    def allocation_matrix(self) -> np.ndarray:
        """Extract the ``(n, m)`` allocation carried by the current flow."""
        alloc = np.zeros((self.cluster.n_jobs, self.cluster.n_sites))
        for (i, j), eid in self.support_edges.items():
            alloc[i, j] = self.graph.edge_flow(eid)
        return alloc


@dataclass(frozen=True, slots=True)
class FeasibilityOutcome:
    """Result of one feasibility solve.

    ``cut_jobs`` / ``cut_sites`` are the job / site indices on the *source
    side* of the (minimal) min cut.  When the targets are infeasible, the
    source-side jobs are exactly the bottlenecked ones: their source edges
    are not cut, so their whole targets must route through the saturated
    source-side sites plus their saturated demand-cap edges into sink-side
    sites.  The AMF solver turns that cut into an exact binding equality
    (see :func:`repro.core.amf.solve_amf`).
    """

    feasible: bool
    flow_value: float
    demanded: float
    cut_jobs: frozenset[int]
    cut_sites: frozenset[int]


def build_network(cluster: Cluster, targets: np.ndarray | None = None) -> FeasibilityNetwork:
    """Build the job-site network for ``cluster``.

    ``targets`` default to each job's aggregate demand (i.e. "give everyone
    everything"), which is what the Pareto checker wants; the AMF solver
    overwrites them per round via :meth:`FeasibilityNetwork.set_targets`.
    """
    g = FlowGraph()
    g.node(SRC)
    caps = cluster.demand_caps
    support = cluster.support
    if targets is None:
        targets = cluster.aggregate_demand
    source_edges = [g.add_edge(SRC, job_key(i), float(targets[i])) for i in range(cluster.n_jobs)]
    support_edges: dict[tuple[int, int], int] = {}
    for i in range(cluster.n_jobs):
        row = support[i]
        for j in np.flatnonzero(row):
            support_edges[(i, int(j))] = g.add_edge(job_key(i), site_key(int(j)), float(caps[i, j]))
    for j in range(cluster.n_sites):
        g.add_edge(site_key(j), SNK, float(cluster.capacities[j]))
    return FeasibilityNetwork(cluster, g, source_edges, support_edges)


def targets_feasible(cluster: Cluster, targets: np.ndarray) -> bool:
    """Whether aggregate targets ``targets`` admit a feasible allocation."""
    net = build_network(cluster, np.asarray(targets, dtype=float))
    return net.solve().feasible


def max_feasible_allocation(cluster: Cluster, targets: np.ndarray) -> np.ndarray:
    """A flow-maximal allocation attempting ``targets`` (may under-deliver).

    Used to realize an aggregate vector as a concrete job-site split.
    """
    net = build_network(cluster, np.asarray(targets, dtype=float))
    net.solve()
    return net.allocation_matrix()
