"""The named-instrument catalog: every built-in metric in one place.

Modules on the hot path do not invent metric names inline — they call the
recording helpers here (or touch the module-level instruments directly),
so the full catalog is greppable and documented once (docs/observability.md
renders this as a table).  All instruments bind to the process-global
:data:`~repro.obs.registry.REGISTRY`.

Naming convention: ``repro_<layer>_<what>[_total|_seconds]`` — counters end
in ``_total``, histograms of durations in ``_seconds`` (Prometheus base
units), gauges are bare nouns.

The AMF probe counters are *fold-ins* of :class:`repro.core.amf
.AmfDiagnostics`: :func:`record_amf` adds the per-solve deltas, so the
registry totals bit-match the sum of diagnostics over the same solve
sequence (asserted by ``tests/obs/test_instruments.py`` and the service
``/metrics`` vs ``/stats`` cross-check).
"""

from __future__ import annotations

from repro.obs.registry import REGISTRY

__all__ = [
    "AMF_SOLVES",
    "CACHE_HITS",
    "CACHE_MISSES",
    "CACHE_EVICTIONS",
    "QUEUE_DEPTH",
    "QUEUE_BATCHES",
    "QUEUE_EVENTS",
    "QUEUE_FLUSH_SECONDS",
    "SERVICE_REQUESTS",
    "SERVICE_ERRORS",
    "SERVICE_REQUEST_SECONDS",
    "SERVICE_SOLVE_SECONDS",
    "SIM_STEPS",
    "SIM_STEP_SECONDS",
    "SIM_SIM_TIME_SECONDS",
    "SIM_ACTIVE_JOBS",
    "SHARD_SOLVES",
    "SHARD_COUNT",
    "SHARD_JOBS",
    "SHARD_SOLVE_SECONDS",
    "SHARD_CACHE_HITS",
    "SHARD_CACHE_MISSES",
    "DIST_RPCS",
    "DIST_RPC_ERRORS",
    "DIST_RPC_SECONDS",
    "DIST_HEARTBEAT_MISSES",
    "DIST_FAILOVERS",
    "DIST_SHARD_REASSIGNMENTS",
    "DIST_WORKERS_ALIVE",
    "GGT_RECURSION_DEPTH",
    "PARALLEL_FALLBACK",
    "ADMISSION_ACCEPTED",
    "ADMISSION_SHED",
    "ADMISSION_QUEUE_DEPTH",
    "ADMISSION_RETRY_AFTER_SECONDS",
    "FLUSH_ERRORS",
    "JOURNAL_APPENDS",
    "JOURNAL_BYTES",
    "JOURNAL_FSYNCS",
    "JOURNAL_CHECKPOINTS",
    "record_amf",
    "record_ggt_sweep_depth",
    "record_cache",
    "record_queue_flush",
    "record_shard_decomposition",
    "record_shard_solve",
    "record_shard_cache",
    "record_dist_rpc",
    "record_dist_heartbeat_miss",
    "record_dist_failover",
    "set_dist_workers_alive",
    "record_parallel_fallback",
    "record_admission",
    "record_admission_shed",
    "record_flush_error",
    "record_journal_append",
    "record_journal_fsync",
    "record_journal_checkpoint",
]

# -- solver (repro.core.amf + repro.flownet.parametric) -----------------
AMF_SOLVES = REGISTRY.counter("repro_amf_solves_total", "AMF solver entries (levels, bisect or full solve)")

#: ``AmfDiagnostics`` field -> counter; the bit-match contract lives here.
_AMF_COUNTERS = {
    "rounds": REGISTRY.counter("repro_amf_rounds_total", "progressive-filling rounds"),
    "feasibility_solves": REGISTRY.counter(
        "repro_amf_feasibility_solves_total", "feasibility probes the solver asked"
    ),
    "cuts_generated": REGISTRY.counter("repro_amf_cuts_generated_total", "new site cuts discovered"),
    "frozen_by_cap": REGISTRY.counter("repro_amf_frozen_by_cap_total", "jobs frozen demand-saturated"),
    "frozen_by_cut": REGISTRY.counter("repro_amf_frozen_by_cut_total", "jobs frozen in a binding cut"),
    "warm_cuts_seeded": REGISTRY.counter(
        "repro_amf_warm_cuts_seeded_total", "cuts replayed from a CutBasis"
    ),
    "probes_early_accept": REGISTRY.counter(
        "repro_flow_probes_early_accept_total", "probes answered by feasible-dominance"
    ),
    "probes_cut_reject": REGISTRY.counter(
        "repro_flow_probes_cut_reject_total", "probes answered by a stored site cut"
    ),
    "probes_warm": REGISTRY.counter(
        "repro_flow_probes_warm_total", "flow solves continuing from existing flow"
    ),
    "probes_cold": REGISTRY.counter("repro_flow_probes_cold_total", "flow solves starting from zero flow"),
    "probe_rollbacks": REGISTRY.counter(
        "repro_flow_probe_rollbacks_total", "probes that cancelled flow before solving"
    ),
    "jobs_folded": REGISTRY.counter(
        "repro_flow_jobs_folded_total", "degree-1 jobs folded out of the flow network"
    ),
    # GGT one-shot sweep (oracle="ggt"); zero on every other backend
    "ggt_sweeps": REGISTRY.counter("repro_ggt_sweeps_total", "GGT parametric sweeps run"),
    "ggt_sweep_flows": REGISTRY.counter(
        "repro_ggt_sweep_flows_total", "flow solves paid inside sweeps (incl. contracted)"
    ),
    "ggt_contractions": REGISTRY.counter(
        "repro_ggt_contractions_total", "contracted subgraph views built by sweep recursion"
    ),
    "ggt_breakpoints": REGISTRY.counter(
        "repro_ggt_breakpoints_total", "leximin breakpoints recovered by sweeps"
    ),
    "ggt_flows_avoided": REGISTRY.counter(
        "repro_ggt_flows_avoided_total", "post-sweep probes answered without a flow solve"
    ),
    # AMRF multi-resource engine (repro.multiresource.engine); zero on
    # scalar clusters and on vector clusters served by the scalar reduction
    "amrf_rounds": REGISTRY.counter("repro_amrf_rounds_total", "AMRF progressive-filling rounds"),
    "amrf_lps": REGISTRY.counter("repro_amrf_lps_total", "LP solves inside the AMRF engine"),
    "amrf_probes": REGISTRY.counter("repro_amrf_probes_total", "per-job max-share freeze probes"),
    "amrf_probes_skipped": REGISTRY.counter(
        "repro_amrf_probes_skipped_total", "freeze probes answered by a witness share"
    ),
    "amrf_basis_rows_reused": REGISTRY.counter(
        "repro_amrf_basis_rows_reused_total", "binding LP rows replayed from a warm AmrfBasis"
    ),
    "amrf_table_hits": REGISTRY.counter(
        "repro_amrf_table_hits_total", "solves served whole from the allocation-table cache"
    ),
}

# -- service: cache / batching / daemon / HTTP --------------------------
CACHE_HITS = REGISTRY.counter("repro_cache_hits_total", "allocation cache hits")
CACHE_MISSES = REGISTRY.counter("repro_cache_misses_total", "allocation cache misses")
CACHE_EVICTIONS = REGISTRY.counter("repro_cache_evictions_total", "allocation cache LRU evictions")

QUEUE_DEPTH = REGISTRY.gauge("repro_queue_depth", "events pending in the coalescing queue")
QUEUE_BATCHES = REGISTRY.counter("repro_queue_batches_total", "batches drained from the coalescing queue")
QUEUE_EVENTS = REGISTRY.counter("repro_queue_coalesced_events_total", "events drained in batches")
QUEUE_FLUSH_SECONDS = REGISTRY.histogram(
    "repro_queue_flush_seconds", "batch apply latency (drain + state apply)"
)

SERVICE_REQUESTS = REGISTRY.counter("repro_service_requests_total", "HTTP requests handled")
SERVICE_ERRORS = REGISTRY.counter("repro_service_errors_total", "HTTP responses with status >= 400")
SERVICE_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_service_request_seconds", "HTTP request handling latency"
)
SERVICE_SOLVE_SECONDS = REGISTRY.histogram(
    "repro_service_solve_seconds", "allocation pipeline latency on cache misses"
)

# -- shard decomposition (repro.core.sharding + service shard cache) ----
SHARD_SOLVES = REGISTRY.counter("repro_shard_solves_total", "individual shard solves (job-bearing components)")
SHARD_COUNT = REGISTRY.histogram(
    "repro_shard_count", "connected components per sharded solve", start=1.0, factor=2.0, buckets=10
)
SHARD_JOBS = REGISTRY.histogram(
    "repro_shard_jobs", "jobs per solved shard", start=1.0, factor=2.0, buckets=12
)
SHARD_SOLVE_SECONDS = REGISTRY.histogram("repro_shard_solve_seconds", "per-shard solve latency")
# Deliberately distinct from repro_cache_*: those bit-match the service
# AllocationCache stats (/metrics vs /stats cross-check); these count the
# per-shard matrix cache inside the sharded incremental solver.
SHARD_CACHE_HITS = REGISTRY.counter("repro_shard_cache_hits_total", "shard matrix cache hits")
SHARD_CACHE_MISSES = REGISTRY.counter("repro_shard_cache_misses_total", "shard matrix cache misses")

# -- distributed control plane (repro.dist) -----------------------------
DIST_RPCS = REGISTRY.counter("repro_dist_rpcs_total", "solver-pool RPCs issued by the coordinator")
DIST_RPC_ERRORS = REGISTRY.counter(
    "repro_dist_rpc_errors_total", "solver-pool RPCs that failed (connection or protocol fault)"
)
DIST_RPC_SECONDS = REGISTRY.histogram("repro_dist_rpc_seconds", "solve RPC round-trip latency")
DIST_HEARTBEAT_MISSES = REGISTRY.counter(
    "repro_dist_heartbeat_misses_total", "heartbeat probes that raised instead of answering"
)
DIST_FAILOVERS = REGISTRY.counter(
    "repro_dist_failovers_total", "workers declared dead and failed over"
)
DIST_SHARD_REASSIGNMENTS = REGISTRY.counter(
    "repro_dist_shard_reassignments_total", "shard ownerships moved off a dead worker"
)
DIST_WORKERS_ALIVE = REGISTRY.gauge("repro_dist_workers_alive", "live workers in the coordinator's pool")

# -- GGT sweep (repro.flownet.ggt) --------------------------------------
# Depth is a per-sweep observation, not a foldable sum, so it lives in a
# histogram instead of _AMF_COUNTERS (the divide-and-conquer contract is
# depth = O(log breakpoints); the distribution makes violations visible).
GGT_RECURSION_DEPTH = REGISTRY.histogram(
    "repro_ggt_recursion_depth", "deepest divide-and-conquer level per sweep", start=1.0, factor=2.0, buckets=8
)

# -- admission control (repro.service.aio) ------------------------------
ADMISSION_ACCEPTED = REGISTRY.counter(
    "repro_admission_accepted_total", "write requests admitted past the intake queue"
)
ADMISSION_SHED = REGISTRY.counter(
    "repro_admission_shed_total", "write requests shed with 429 (intake queue full)"
)
ADMISSION_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_admission_queue_depth", "work items pending in the bounded intake queue"
)
ADMISSION_RETRY_AFTER_SECONDS = REGISTRY.histogram(
    "repro_admission_retry_after_seconds", "Retry-After hints handed to shed requests"
)

# -- background flusher (both HTTP edges) -------------------------------
FLUSH_ERRORS = REGISTRY.counter(
    "repro_flush_errors_total", "background flush cycles that raised (flusher keeps running)"
)

# -- write-ahead journal (repro.service.journal) ------------------------
JOURNAL_APPENDS = REGISTRY.counter("repro_journal_appends_total", "events appended to the journal")
JOURNAL_BYTES = REGISTRY.counter("repro_journal_bytes_total", "bytes written to journal segments")
JOURNAL_FSYNCS = REGISTRY.counter("repro_journal_fsyncs_total", "group-commit fsyncs of the live segment")
JOURNAL_CHECKPOINTS = REGISTRY.counter(
    "repro_journal_checkpoints_total", "snapshot checkpoints written (segments compacted)"
)

# -- analysis fan-out ----------------------------------------------------
PARALLEL_FALLBACK = REGISTRY.counter(
    "repro_parallel_fallback_total",
    "parallel_map calls that degraded to serial because fork is unavailable",
)

# -- simulator ----------------------------------------------------------
SIM_STEPS = REGISTRY.counter("repro_sim_steps_total", "simulator intervals observed")
SIM_STEP_SECONDS = REGISTRY.histogram(
    "repro_sim_step_seconds", "wall-clock time per simulator step (policy solve + advance)"
)
SIM_SIM_TIME_SECONDS = REGISTRY.counter(
    "repro_sim_simulated_time_total", "simulated time advanced across observed intervals"
)
SIM_ACTIVE_JOBS = REGISTRY.gauge("repro_sim_active_jobs", "jobs active in the last observed interval")


# -- recording helpers (each guards on REGISTRY.enabled) ----------------
def record_amf(diag, since=None) -> None:
    """Fold one solve's :class:`AmfDiagnostics` into the registry.

    ``since`` is a snapshot of the same record taken when the solve
    started: callers may hand one mutable diagnostics object to several
    consecutive solver entries, so only the *delta* belongs to this one.
    """
    if not REGISTRY.enabled:
        return
    AMF_SOLVES.inc()
    for field, counter in _AMF_COUNTERS.items():
        value = getattr(diag, field)
        if since is not None:
            value -= getattr(since, field)
        if value:
            counter.inc(value)


def record_ggt_sweep_depth(depth: int) -> None:
    if REGISTRY.enabled and depth > 0:
        GGT_RECURSION_DEPTH.observe(depth)


def record_cache(*, hit: bool, evictions: int = 0) -> None:
    if not REGISTRY.enabled:
        return
    (CACHE_HITS if hit else CACHE_MISSES).inc()
    if evictions:
        CACHE_EVICTIONS.inc(evictions)


def record_queue_flush(batch_size: int, seconds: float) -> None:
    if not REGISTRY.enabled:
        return
    QUEUE_BATCHES.inc()
    QUEUE_EVENTS.inc(batch_size)
    QUEUE_FLUSH_SECONDS.observe(seconds)


def record_shard_decomposition(n_shards: int) -> None:
    if not REGISTRY.enabled:
        return
    SHARD_COUNT.observe(n_shards)


def record_shard_solve(n_jobs: int, seconds: float) -> None:
    if not REGISTRY.enabled:
        return
    SHARD_SOLVES.inc()
    SHARD_JOBS.observe(n_jobs)
    SHARD_SOLVE_SECONDS.observe(seconds)


def record_shard_cache(*, hits: int = 0, misses: int = 0) -> None:
    if not REGISTRY.enabled:
        return
    if hits:
        SHARD_CACHE_HITS.inc(hits)
    if misses:
        SHARD_CACHE_MISSES.inc(misses)


def record_dist_rpc(seconds: float, *, ok: bool = True) -> None:
    if not REGISTRY.enabled:
        return
    DIST_RPCS.inc()
    if ok:
        DIST_RPC_SECONDS.observe(seconds)
    else:
        DIST_RPC_ERRORS.inc()


def record_dist_heartbeat_miss() -> None:
    if REGISTRY.enabled:
        DIST_HEARTBEAT_MISSES.inc()


def record_dist_failover(reassigned_shards: int) -> None:
    if not REGISTRY.enabled:
        return
    DIST_FAILOVERS.inc()
    if reassigned_shards:
        DIST_SHARD_REASSIGNMENTS.inc(reassigned_shards)


def set_dist_workers_alive(n: int) -> None:
    if REGISTRY.enabled:
        DIST_WORKERS_ALIVE.set(n)


def record_parallel_fallback() -> None:
    if REGISTRY.enabled:
        PARALLEL_FALLBACK.inc()


def record_admission(*, depth: int) -> None:
    if not REGISTRY.enabled:
        return
    ADMISSION_ACCEPTED.inc()
    ADMISSION_QUEUE_DEPTH.set(depth)


def record_admission_shed(retry_after: float) -> None:
    if not REGISTRY.enabled:
        return
    ADMISSION_SHED.inc()
    ADMISSION_RETRY_AFTER_SECONDS.observe(retry_after)


def record_flush_error() -> None:
    if REGISTRY.enabled:
        FLUSH_ERRORS.inc()


def record_journal_append(events: int, nbytes: int) -> None:
    if not REGISTRY.enabled:
        return
    JOURNAL_APPENDS.inc(events)
    JOURNAL_BYTES.inc(nbytes)


def record_journal_fsync() -> None:
    if REGISTRY.enabled:
        JOURNAL_FSYNCS.inc()


def record_journal_checkpoint() -> None:
    if REGISTRY.enabled:
        JOURNAL_CHECKPOINTS.inc()
