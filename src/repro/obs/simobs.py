"""`SimObserver`: feed simulator step timings into the metrics registry.

The fluid simulator already supports pluggable observers
(:mod:`repro.sim.observers`); this one bridges the run into
:mod:`repro.obs` so a simulation shows up in the same ``/metrics`` /
``--trace-out`` surface as the service and the CLI solvers:

* ``repro_sim_steps_total`` — intervals realized,
* ``repro_sim_simulated_time_total`` — simulated seconds advanced,
* ``repro_sim_step_seconds`` — *wall-clock* time between consecutive
  intervals (policy solve + event bookkeeping; measured from the gap
  between ``observe`` calls, so the first interval is not sampled),
* ``repro_sim_active_jobs`` — active jobs in the last interval.

Compose with other observers via
:class:`repro.sim.observers.CompositeObserver`; the CLI wires it in with
``--observe metrics``.
"""

from __future__ import annotations

import time

from repro.obs.instruments import SIM_ACTIVE_JOBS, SIM_SIM_TIME_SECONDS, SIM_STEP_SECONDS, SIM_STEPS
from repro.obs.registry import REGISTRY


class SimObserver:
    """Streams per-interval simulator telemetry into the global registry.

    Deliberately *not* a :class:`repro.sim.observers.Observer` subclass —
    the engine duck-types observers, and importing :mod:`repro.sim` here
    would cycle back through :mod:`repro.core` into :mod:`repro.obs`.
    The optional fault hooks are therefore simply absent (the engine only
    calls hooks an observer defines).
    """

    def __init__(self):
        self._last_wall: float | None = None
        self.steps = 0

    def observe(self, t, dt, snapshot, alloc) -> None:
        if not REGISTRY.enabled:
            return
        now = time.perf_counter()
        self.steps += 1
        SIM_STEPS.inc()
        if dt > 0.0:
            SIM_SIM_TIME_SECONDS.inc(dt)
        SIM_ACTIVE_JOBS.set(snapshot.n_jobs)
        if self._last_wall is not None:
            SIM_STEP_SECONDS.observe(now - self._last_wall)
        self._last_wall = now

    def summary(self) -> dict[str, float]:
        """Registry-backed run summary (wall stats need >= 2 intervals)."""
        hist = SIM_STEP_SECONDS
        mean_wall = hist.sum / hist.count if hist.count else 0.0
        return {
            "steps": float(self.steps),
            "simulated_time": SIM_SIM_TIME_SECONDS.value,
            "mean_step_wall_seconds": mean_wall,
        }
