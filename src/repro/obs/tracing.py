"""Trace spans: a ring buffer of recent timed sections, Chrome-trace export.

Metrics (:mod:`repro.obs.registry`) say *how much*; traces say *where the
time went* for individual operations.  :class:`Tracer` keeps a bounded
ring of completed spans — ``span("amf.solve")`` around a solver call,
nested ``flow.probe`` spans inside it, ``flow.max_flow`` inside those —
and exports them in the Chrome trace event format, loadable in
``chrome://tracing`` / https://ui.perfetto.dev.

Design points:

* **Off by default, one attribute read to check.**  Hot paths guard with
  ``if TRACER.enabled:`` and fall through to the plain call otherwise, so
  a disabled tracer costs one branch.
* **Parent-child nesting** is tracked per thread with a thread-local
  stack; each recorded span carries its parent's name and its depth, and
  the Chrome export nests by time containment within a thread track.
* **Bounded memory**: completed spans land in a ``deque(maxlen=...)``;
  a long-lived daemon keeps the most recent ``max_events`` spans and
  forgets the rest.  ``GET /traces`` on the service serves this ring.

Use :func:`span` as a context manager (fast path built in) and
:func:`traced` as a decorator::

    with span("amf.solve", jobs=cluster.n_jobs):
        ...

    @traced("report.experiment")
    def run(): ...
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

__all__ = ["SpanRecord", "Tracer", "TRACER", "get_tracer", "span", "traced"]


class SpanRecord(dict):
    """One completed span (a plain dict for cheap JSON export).

    Keys: ``name``, ``ts`` / ``dur`` (µs since tracer epoch / duration),
    ``tid``, ``parent`` (enclosing span name or ``None``), ``depth``,
    ``args`` (user payload).
    """

    __slots__ = ()


_perf_counter = time.perf_counter  # bound once: the span path runs per probe


class _Span:
    """A live span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_t0", "_stack", "_tid")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        # one thread-local lookup per span: cache the stack (and the thread
        # id alongside it) for __exit__
        local = self._tracer._local
        try:
            stack = local.stack
            self._tid = local.ident
        except AttributeError:
            stack = local.stack = []
            self._tid = local.ident = threading.get_ident()
        self._stack = stack
        stack.append(self.name)
        self._t0 = _perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        t1 = _perf_counter()
        tracer = self._tracer
        stack = self._stack
        stack.pop()
        tracer._events.append(
            SpanRecord(
                name=self.name,
                ts=(self._t0 - tracer._epoch) * 1e6,
                dur=(t1 - self._t0) * 1e6,
                tid=self._tid,
                parent=stack[-1] if stack else None,
                depth=len(stack),
                args=self.args,
            )
        )


class _NoopSpan:
    """Returned by :func:`span` when tracing is disabled; absorbs usage."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    @property
    def args(self) -> dict[str, Any]:  # mutations are intentionally dropped
        return {}


_NOOP = _NoopSpan()


class Tracer:
    """Ring buffer of recent spans with per-thread nesting state."""

    def __init__(self, max_events: int = 8192):
        self.enabled = False
        self.max_events = max_events
        self._events: deque[SpanRecord] = deque(maxlen=max_events)
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- recording -----------------------------------------------------
    # _Span appends to _events directly: deque.append is atomic under the
    # GIL; the lock only guards clear/snapshot from a shifting ring.
    def span(self, name: str, **args: Any) -> _Span:
        """A live span regardless of :attr:`enabled` (callers pre-check)."""
        return _Span(self, name, args)

    # -- export ---------------------------------------------------------
    def events(self) -> list[SpanRecord]:
        """Completed spans, oldest first."""
        with self._lock:
            return list(self._events)

    def to_chrome(self) -> dict[str, Any]:
        """Chrome trace event format: complete (``ph: "X"``) events."""
        pid = os.getpid()
        trace_events = [
            {
                "name": ev["name"],
                "cat": ev["name"].split(".", 1)[0],
                "ph": "X",
                "ts": ev["ts"],
                "dur": ev["dur"],
                "pid": pid,
                "tid": ev["tid"],
                "args": dict(ev["args"], parent=ev["parent"], depth=ev["depth"]),
            }
            for ev in self.events()
        ]
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export(self, path: str | Path) -> int:
        """Write the Chrome-trace JSON to ``path``; returns the span count."""
        payload = self.to_chrome()
        Path(path).write_text(json.dumps(payload))
        return len(payload["traceEvents"])


#: The process-global tracer every built-in span binds to.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def span(name: str, **args: Any) -> _Span | _NoopSpan:
    """Context manager around a timed section (no-op when tracing is off)."""
    if not TRACER.enabled:
        return _NOOP
    return TRACER.span(name, **args)


def traced(name: str) -> Callable:
    """Decorator form of :func:`span`; the enabled check runs per call."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
