"""`repro.obs` — zero-dependency observability: metrics + trace spans.

Two process-global singletons, both **off by default** with a
one-attribute-read fast path on every hot call site:

* :data:`~repro.obs.registry.REGISTRY` — counters / gauges / histograms,
  rendered as Prometheus text (``GET /metrics``, :func:`render_prometheus`).
* :data:`~repro.obs.tracing.TRACER` — a ring buffer of recent spans with
  parent-child nesting (``amf.solve`` → ``flow.probe`` → ``flow.max_flow``),
  exported as Chrome-trace JSON (``GET /traces``, ``--trace-out``).

Turn both on with :func:`enable`; the service daemon does this by default
and the CLI does under ``--trace-out``.  See docs/observability.md for the
instrument catalog and export walk-throughs.
"""

from repro.obs.instruments import record_amf, record_cache, record_queue_flush
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.simobs import SimObserver
from repro.obs.tracing import TRACER, Tracer, get_tracer, span, traced

__all__ = [
    "REGISTRY",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimObserver",
    "Tracer",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "parse_prometheus",
    "record_amf",
    "record_cache",
    "record_queue_flush",
    "render_prometheus",
    "span",
    "traced",
]


def enable(*, metrics: bool = True, traces: bool = True) -> None:
    """Switch the global registry and/or tracer on."""
    if metrics:
        REGISTRY.enable()
    if traces:
        TRACER.enable()


def disable() -> None:
    """Switch both the global registry and tracer off (data is kept)."""
    REGISTRY.disable()
    TRACER.disable()
