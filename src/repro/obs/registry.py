"""Zero-dependency process-global metrics registry.

The solver, flow engine, cache, batching queue, simulator and HTTP service
all count things (``AmfDiagnostics``, ``ProbeStats``, ``CacheStats`` ...),
but until now each record was an island: visible only to whoever held the
Python object.  :class:`MetricsRegistry` is the shared sink those counters
fold into, so one scrape of ``GET /metrics`` (or one
:func:`render_prometheus` call) shows what every layer did.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotone total (``*_total``).
* :class:`Gauge` — a value that goes up and down (queue depth, cache size).
* :class:`Histogram` — fixed **log-scale** buckets (``start * factor**k``),
  chosen once at creation; observations land in the first bucket whose
  upper bound is >= the value.  Log buckets keep the bucket count small
  while spanning µs solver probes to multi-second report runs.

The registry is *disabled by default* and every hot-path call site guards
on :attr:`MetricsRegistry.enabled` (one attribute read), so the library
pays nothing until someone turns observability on — the service daemon
does (``AllocationService(observability=True)``), the CLI does under
``--trace-out``, and `benchmarks/bench_obs_overhead.py` gates the enabled
cost at <5% of the flow-probe stage.

Instrument mutation is a plain float add without locking: CPython's GIL
makes ``+=`` on a slot lossy only across preemption points that do not
exist inside the C-level float add for our single-writer call sites, and
the service serializes all solver work behind one lock anyway.  Rendering
takes the registry lock only to snapshot the instrument list.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "render_prometheus",
    "parse_prometheus",
]

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)")
    return name


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotone counter (`*_total` by convention)."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def render(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Gauge:
    """A value that can go up and down (depth, size, in-flight count)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def render(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]


class Histogram:
    """Histogram over fixed log-scale buckets ``start * factor**k``.

    ``bounds`` are the buckets' inclusive upper edges; the implicit
    ``+Inf`` bucket catches everything above the last edge.  Cumulative
    bucket counts, ``_sum`` and ``_count`` render in the standard
    Prometheus histogram exposition shape.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        start: float = 1e-5,
        factor: float = 4.0,
        buckets: int = 12,
    ):
        if not (start > 0.0 and factor > 1.0 and buckets >= 1):
            raise ValueError("histogram needs start > 0, factor > 1, buckets >= 1")
        self.name = _check_name(name)
        self.help = help
        self.bounds = [start * factor**k for k in range(buckets)]
        self.counts = [0] * (buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.sum = 0.0
        self.count = 0

    def render(self) -> list[str]:
        lines = []
        cum = 0
        for bound, n in zip(self.bounds, self.counts):
            cum += n
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_fmt(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Named-instrument store with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    when the name is already registered (and raise on a kind clash), so
    module-level catalogs (:mod:`repro.obs.instruments`) and ad-hoc callers
    can both address metrics by name without coordination.
    """

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    # -- instrument access ---------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, wanted {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", *, start: float = 1e-5, factor: float = 4.0, buckets: int = 12
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, start=start, factor=factor, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- export ---------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4) of every instrument."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, float | dict]:
        """JSON-ready dump (counters/gauges as floats, histograms as dicts)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, float | dict] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": dict(zip([_fmt(b) for b in metric.bounds] + ["+Inf"], metric.counts)),
                }
            else:
                out[metric.name] = metric.value
        return out


#: The process-global registry every built-in instrument binds to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY


def render_prometheus() -> str:
    """Render the global registry (module-level convenience)."""
    return REGISTRY.render_prometheus()


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text format into ``{sample_name_with_labels: value}``.

    A strict-enough validator for tests and CI smoke checks: raises
    :class:`ValueError` on any line that is neither a comment nor a
    ``name[{labels}] value`` sample, and on non-float sample values.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: not a sample: {line!r}")
        key, raw = parts
        name = key.split("{", 1)[0]
        if "{" in key and not key.endswith("}"):
            raise ValueError(f"line {lineno}: unterminated label set: {line!r}")
        _check_name(name)
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad sample value {raw!r}") from exc
        samples[key] = value
    return samples


def all_samples(registries: Iterable[MetricsRegistry] = ()) -> dict[str, float]:
    """Flat sample dict of the global registry (plus any extras), via the
    text format — guarantees tests compare exactly what a scraper sees."""
    text = REGISTRY.render_prometheus() + "".join(r.render_prometheus() for r in registries)
    return parse_prometheus(text)
