"""Online allocation service: continuous AMF under job churn.

Boots the full :class:`~repro.service.daemon.AllocationService` pipeline
in-process (no HTTP needed), streams a burst of arrivals, departures and
a capacity change through it, and prints what each layer contributed:
batched re-solves, cache hits, and cutting planes replayed from the
persistent basis instead of rediscovered via max-flow probes.

The same pipeline is served over HTTP by ``python -m repro.cli serve``
(endpoints and wire format: docs/service.md).

Run:  python examples/online_service.py
"""

from repro.model.job import Job
from repro.model.site import Site
from repro.service import AllocationService, CapacityChanged, ClusterState, JobArrived, JobDeparted


def show(service: AllocationService, note: str) -> None:
    served = service.allocation()
    alloc = served.allocation
    origin = "cache" if served.cached else f"solved in {served.seconds * 1e3:.2f} ms"
    print(f"--- {note}  [{alloc.policy}, {origin}, state v{served.version}]")
    for job, agg in zip(alloc.cluster.jobs, alloc.aggregates):
        print(f"    {job.name:8s} aggregate = {agg:.3f}")


def main() -> None:
    state = ClusterState([Site("east", 4.0), Site("west", 2.0)])
    service = AllocationService(state, max_delay=0.0)  # apply deltas immediately

    # A burst of arrivals coalesces into one batch -> one warm re-solve.
    service.submit_all(
        [
            JobArrived(Job("miner", {"east": 1.0})),
            JobArrived(Job("indexer", {"east": 1.0})),
            JobArrived(Job("ranker", {"east": 1.0, "west": 1.0}, demand={"west": 0.5})),
        ]
    )
    show(service, "three jobs arrive (one coalesced batch)")
    show(service, "read again with no churn")  # served from the allocation cache

    service.submit(JobArrived(Job("crawler", {"west": 1.0})))
    show(service, "crawler arrives on the idle site")

    service.submit(JobDeparted("indexer"))
    service.submit(CapacityChanged("east", 6.0))
    show(service, "indexer departs, east grows to 6.0")

    stats = service.stats()
    inc = stats["incremental"]
    print("\npipeline counters:")
    print(f"    events accepted     : {stats['state']['events_accepted']}")
    print(f"    batches / solves    : {stats['batching']['batches']} / {inc['solves']}")
    print(f"    cache hit rate      : {stats['cache']['hit_rate']:.2f}")
    print(f"    cuts discovered     : {inc['cuts_generated']}")
    print(f"    cuts replayed warm  : {inc['warm_cuts_seeded']}")
    print(f"    fallback activations: {stats['resilience']['fallback_activations']}")
    print("\nThe warm solves replay the bottleneck cut discovered on the first")
    print("batch instead of re-deriving it from max-flow probes; reads between")
    print("deltas never touch the solver at all (docs/service.md).")


if __name__ == "__main__":
    main()
