"""Quickstart: Aggregate Max-min Fairness in 60 seconds.

Builds a tiny two-datacenter cluster by hand, contrasts the per-site
baseline (PSMF) with AMF, and shows the property checkers at work —
including the sharing-incentive violation that motivates enhanced AMF.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core import properties
from repro.metrics.fairness import balance_report


def main() -> None:
    # Two datacenters; three analytics jobs with data pinned by locality.
    # "miner" and "indexer" can only run where their data is (site east);
    # "ranker" has data in both but only a little parallelism at west.
    cluster = repro.Cluster(
        sites=[repro.Site("east", 1.0), repro.Site("west", 1.0)],
        jobs=[
            repro.Job("miner", {"east": 1.0}),
            repro.Job("indexer", {"east": 1.0}),
            repro.Job("ranker", {"east": 1.0, "west": 0.2}, demand={"west": 0.2}),
        ],
    )

    print("=== Baseline: per-site max-min fairness (PSMF) ===")
    psmf = repro.solve_psmf(cluster)
    print(psmf.pretty())
    print(f"balance: {balance_report(psmf).row()}")

    print("\n=== Aggregate Max-min Fairness (AMF) ===")
    amf = repro.solve_amf(cluster)
    print(amf.pretty())
    print(f"balance: {balance_report(amf).row()}")

    print("\n=== Properties ===")
    rep = properties.check_all(amf)
    print(f"Pareto efficient:   {rep.pareto}")
    print(f"Aggregate max-min:  {rep.max_min}")
    print(f"Envy-free:          {rep.envy_free}")
    print(f"Sharing incentive:  {rep.sharing_incentive}  (shortfall {rep.si_shortfall:.4f})")

    entitlements = cluster.equal_partition_entitlements()
    print(f"\nequal-partition entitlements: {np.round(entitlements, 4)}")
    print("ranker is entitled to 0.5333 but AMF levels everyone at 0.4 -> enhanced AMF:")

    print("\n=== Enhanced AMF (sharing-incentive floors) ===")
    enhanced = repro.solve_amf_enhanced(cluster)
    print(enhanced.pretty())
    assert properties.satisfies_sharing_incentive(enhanced)
    print("sharing incentive restored.")


if __name__ == "__main__":
    main()
