"""Online federation: Poisson arrivals under increasing load.

An open system where jobs stream into a three-datacenter federation.  We
sweep the offered load and watch mean slowdown under the per-site baseline
vs AMF — the dynamic version of the paper's evaluation (experiment F7).

Run:  python examples/online_federation.py
"""

import numpy as np

from repro.analysis.tables import render_series
from repro.sim.engine import simulate
from repro.workload.arrivals import ArrivalSpec, generate_arrival_jobs
from repro.workload.generator import WorkloadSpec


def main() -> None:
    loads = (0.4, 0.6, 0.8)
    policies = ("psmf", "amf")
    series: dict[str, list[float]] = {f"{p}/slowdown": [] for p in policies}
    series.update({f"{p}/p95_jct": [] for p in policies})

    for load in loads:
        spec = ArrivalSpec(
            workload=WorkloadSpec(n_jobs=60, n_sites=3, theta=1.2, site_spread=2, mean_work=40.0),
            load=load,
            site_capacity=10.0,
        )
        sites, jobs = generate_arrival_jobs(spec, np.random.default_rng(7))
        for name in policies:
            res = simulate(sites, jobs, name)
            series[f"{name}/slowdown"].append(round(res.mean_slowdown, 3))
            series[f"{name}/p95_jct"].append(round(res.jct_percentile(95), 2))

    print(render_series("load", list(loads), series, title="Open system: slowdown & tail JCT vs offered load"))
    print()
    print("Reading the table: slowdown rises with load for every policy (queueing),")
    print("but AMF holds the multi-site jobs' slowdowns down by compensating across sites.")


if __name__ == "__main__":
    main()
