"""Strategy-proofness demo: why AMF resists gaming and naive policies don't.

The paper proves AMF is strategy-proof: no job can increase what it
*usefully* receives by misreporting its workload distribution or demand
caps.  This example makes the claim tangible:

1. run the randomized manipulation probe against AMF — it finds nothing;
2. run the same probe against a deliberately gameable policy that divides
   each site proportionally to *reported total work* — it finds profitable
   lies immediately and prints them.

Run:  python examples/strategyproofness_demo.py
"""

import numpy as np

from repro.core import properties
from repro.core.allocation import Allocation
from repro.core.amf import solve_amf
from repro.model.cluster import Cluster
from repro.model.job import Job
from repro.model.site import Site


def proportional_to_reported_work(cluster: Cluster) -> Allocation:
    """A tempting but gameable policy: bigger reported jobs get more."""
    shares = cluster.workloads.sum(axis=1)
    matrix = np.zeros_like(cluster.workloads)
    for j in range(cluster.n_sites):
        present = np.flatnonzero(cluster.support[:, j])
        if present.size == 0:
            continue
        local = shares[present] / shares[present].sum()
        matrix[present, j] = np.minimum(local * cluster.capacities[j], cluster.demand_caps[present, j])
    return Allocation(cluster, matrix, policy="proportional-to-work")


def main() -> None:
    cluster = Cluster(
        sites=[Site("east", 4.0), Site("west", 4.0)],
        jobs=[
            Job("etl", {"east": 3.0, "west": 1.0}),
            Job("training", {"east": 2.0, "west": 2.0}),
            Job("reporting", {"east": 1.0, "west": 3.0}),
        ],
    )
    rng = np.random.default_rng(42)

    print("=== Probing AMF (proved strategy-proof) ===")
    wins = properties.strategy_proofness_probe(cluster, solve_amf, rng, attempts=40)
    print(f"manipulation attempts that paid off: {len(wins)}")
    assert not wins, "AMF should resist every manipulation"

    print("\n=== Probing a naive 'proportional to reported work' policy ===")
    wins = properties.strategy_proofness_probe(cluster, proportional_to_reported_work, rng, attempts=40)
    print(f"manipulation attempts that paid off: {len(wins)}")
    for w in wins[:5]:
        gain_pct = 100.0 * w.gain / w.truthful_utility
        print(
            f"  job {w.job!r} lied via {w.kind!r}: utility "
            f"{w.truthful_utility:.3f} -> {w.manipulated_utility:.3f} (+{gain_pct:.1f}%)"
        )
    print("\nThe same probe that certifies AMF exposes the naive policy —")
    print("evidence the checker has teeth, not just that AMF passes it.")


if __name__ == "__main__":
    main()
