"""Multi-resource federation: AMF generalized to (cpu, mem) vectors.

The future-work extension implemented in `repro.multiresource`: three
datacenters with different cpu/mem balances, jobs with heterogeneous
per-task demand vectors (cpu-heavy model training vs memory-heavy
caching).  Compares per-site DRF (Ghodsi et al., run independently per
site) against AMRF (max-min fairness on aggregate dominant shares) and
prints where each job's dominant share lands.

Run:  python examples/multiresource_federation.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.metrics.fairness import jain_index, min_max_ratio
from repro.multiresource import MRCluster, MRJob, MRSite, solve_amrf, solve_persite_drf


def main() -> None:
    sites = [
        MRSite("compute-dc", {"cpu": 64.0, "mem": 128.0}),  # cpu-rich
        MRSite("memory-dc", {"cpu": 16.0, "mem": 512.0}),  # mem-rich
        MRSite("edge", {"cpu": 8.0, "mem": 32.0}),  # small
    ]
    jobs = [
        # cpu-heavy training pinned mostly to the compute DC
        MRJob("train-a", {"cpu": 4.0, "mem": 8.0}, {"compute-dc": 30.0, "edge": 4.0}),
        MRJob("train-b", {"cpu": 4.0, "mem": 8.0}, {"compute-dc": 30.0}),
        # memory-heavy caching spread across memory DC and edge
        MRJob("cache-a", {"cpu": 0.5, "mem": 16.0}, {"memory-dc": 40.0, "edge": 6.0}),
        MRJob("cache-b", {"cpu": 0.5, "mem": 16.0}, {"memory-dc": 40.0}),
        # balanced ETL present everywhere
        MRJob("etl", {"cpu": 2.0, "mem": 4.0}, {"compute-dc": 10.0, "memory-dc": 10.0, "edge": 10.0}),
    ]
    cluster = MRCluster(sites, jobs)

    drf_rates = solve_persite_drf(cluster)
    amrf_rates = solve_amrf(cluster)
    drf_shares = cluster.aggregate_dominant_shares(drf_rates)
    amrf_shares = cluster.aggregate_dominant_shares(amrf_rates)

    rows = []
    for i, job in enumerate(jobs):
        rows.append(
            [
                job.name,
                f"{job.task_demand.get('cpu', 0):g}c/{job.task_demand.get('mem', 0):g}m",
                drf_rates[i].sum(),
                drf_shares[i],
                amrf_rates[i].sum(),
                amrf_shares[i],
            ]
        )
    print(render_table(
        ["job", "task shape", "DRF tasks", "DRF dom.share", "AMRF tasks", "AMRF dom.share"],
        rows,
        title="Per-site DRF vs Aggregate Multi-Resource Fairness",
    ))
    print()
    print(f"dominant-share balance:  DRF jain={jain_index(drf_shares):.4f} "
          f"min/max={min_max_ratio(drf_shares):.4f}")
    print(f"                        AMRF jain={jain_index(amrf_shares):.4f} "
          f"min/max={min_max_ratio(amrf_shares):.4f}")
    print()
    print("AMRF equalizes what each job holds of its scarcest federation-wide")
    print("resource; per-site DRF leaves the cross-site imbalance in place.")


if __name__ == "__main__":
    main()
