"""Geo-distributed analytics: the paper's motivating scenario, end to end.

A federation of five datacenters runs a batch of analytics jobs whose input
data — and therefore work — is skewed toward the popular datacenters
(Zipf theta = 1.5).  We solve the batch under every policy, compare
balance, then simulate the batch to completion and compare job completion
times, including the completion-time add-on.

Run:  python examples/geo_distributed_analytics.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.policies import get_policy
from repro.metrics.fairness import balance_report
from repro.model.validation import validate_instance
from repro.sim.engine import simulate
from repro.workload.generator import WorkloadSpec, generate_jobs, sites_for

POLICIES = ("psmf", "amf", "amf-e", "amf-ct-quick")


def main() -> None:
    spec = WorkloadSpec(
        n_jobs=40,
        n_sites=5,
        theta=1.5,  # highly skewed data placement
        site_spread=3,
        mean_work=60.0,
        demand_scale=0.05,
        contention=2.5,
    )
    rng = np.random.default_rng(2024)
    jobs = generate_jobs(spec, rng)
    sites = sites_for(spec, jobs)

    from repro.model.cluster import Cluster

    cluster = Cluster(sites, jobs)
    print(validate_instance(cluster))
    print()

    # --- static allocation comparison -------------------------------------
    rows = []
    for name in POLICIES:
        alloc = get_policy(name)(cluster)
        rep = balance_report(alloc)
        rows.append([name, rep.jain, rep.cov, rep.min_max, rep.utilization])
    print(render_table(
        ["policy", "jain", "cov", "min/max", "utilization"],
        rows,
        title="Static allocation balance (skewed batch, theta=1.5)",
    ))
    print()

    # --- dynamic batch simulation ------------------------------------------
    rows = []
    for name in POLICIES:
        res = simulate(sites, jobs, name)
        s = res.summary()
        rows.append([name, s["mean_jct"], s["median_jct"], s["p95_jct"], s["makespan"]])
    print(render_table(
        ["policy", "mean JCT", "median JCT", "p95 JCT", "makespan"],
        rows,
        title="Simulated batch completion times",
    ))
    print()
    print("Expected shape: AMF-family policies balance far better than PSMF, and")
    print("the completion-time add-on (amf-ct-quick) trims the JCT tail further.")


if __name__ == "__main__":
    main()
