"""Trace replay: heavy-tailed, diurnally modulated synthetic trace.

Production traces (Google/Alibaba) are not shippable, so this example
replays the library's synthetic trace substitute (DESIGN.md substitution
note): Pareto job sizes, sinusoidal arrival intensity and mixed locality
classes (single-site / regional / global jobs).  It prints an excerpt of
the event trace and the per-class JCT breakdown under AMF with the
completion-time add-on.

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.sim.engine import simulate
from repro.sim.trace import Trace
from repro.workload.traces import TraceSpec, generate_trace_jobs


def main() -> None:
    spec = TraceSpec(
        n_jobs=80,
        n_sites=6,
        horizon=60.0,
        theta=1.2,
        pareto_shape=1.8,
        mean_work=25.0,
        diurnal_amplitude=0.6,
        class_shares=(0.4, 0.4, 0.2),
    )
    rng = np.random.default_rng(99)
    sites, jobs = generate_trace_jobs(spec, rng)

    trace = Trace(max_events=5000)
    res = simulate(sites, jobs, "amf-ct-quick", trace=trace)

    print("=== event trace (first 15 events) ===")
    print(trace.render(limit=15))
    print()
    print("=== run summary ===")
    print(res)
    print()

    # per-locality-class breakdown
    by_class: dict[str, list[float]] = {"single-site": [], "regional": [], "global": []}
    job_by_name = {j.name: j for j in jobs}
    for rec in res.records:
        if not rec.finished:
            continue
        spread = len(job_by_name[rec.name].workload)
        if spread == 1:
            by_class["single-site"].append(rec.slowdown)
        elif spread < spec.n_sites:
            by_class["regional"].append(rec.slowdown)
        else:
            by_class["global"].append(rec.slowdown)
    rows = []
    for cls, vals in by_class.items():
        if vals:
            rows.append([cls, len(vals), float(np.mean(vals)), float(np.percentile(vals, 95))])
    print(render_table(
        ["locality class", "jobs", "mean slowdown", "p95 slowdown"],
        rows,
        title="Slowdown by locality class (AMF + CT add-on)",
    ))


if __name__ == "__main__":
    main()
