"""T4 (extension) — monotonicity axioms per policy.

PSMF and AMF survive both probes; AMF-E violates monotonicity (population
or resource, depending on the instance) because departures and site growth
both raise the remaining jobs' entitlement floors — the inherent price of
the sharing-incentive guarantee, reported honestly.
"""

from repro.analysis.experiments import run_t4_monotonicity


def test_t4_monotonicity(run_once):
    out = run_once(run_t4_monotonicity, scale=1.0, seeds=(0, 1, 2, 3))
    data = out.data["data"]
    assert data["amf"]["population_breaches"] == 0
    assert data["amf"]["resource_breaches"] == 0
    assert data["psmf"]["population_breaches"] == 0
    assert data["psmf"]["resource_breaches"] == 0
