"""F8 — Solver scalability + ablation: cutting planes vs pure bisection.

DESIGN.md §6 ablation: exact bottleneck snapping (the paper's algorithm
engineering) vs a naive tolerance binary search.  Expected shape: cutting
planes use far fewer max-flow solves and scale better.
"""

from repro.analysis.experiments import run_f8_scalability


def test_f8_scalability(run_once):
    out = run_once(run_f8_scalability, scale=0.4, sizes=((50, 10), (100, 20), (200, 20)))
    rows = out.data["rows"]
    for row in rows:
        assert row["cutting_solves"] <= row["bisect_solves"]
    # and the advantage holds at the largest size measured
    assert rows[-1]["cutting_ms"] <= rows[-1]["bisect_ms"]
