"""X7 (extension) — multi-resource fairness: per-site DRF vs AMRF.

The paper's single-resource story generalized to (cpu, mem) vectors:
AMRF (max-min over aggregate dominant shares) dominates per-site DRF on
dominant-share balance, with the gap growing under skew.
"""

from repro.analysis.experiments import run_x7_multiresource


def test_x7_multiresource(run_once, benchmark, record_bench):
    out = run_once(run_x7_multiresource, scale=1.0, seeds=(0, 1), thetas=(0.0, 2.0))
    sw = out.data["sweep"]
    for theta in sw.x_values:
        assert sw.metric_at("amrf/jain", theta) >= sw.metric_at("psdrf/jain", theta) - 1e-9
        assert sw.metric_at("amrf/min_share", theta) >= sw.metric_at("psdrf/min_share", theta) - 1e-9
    record_bench("x7_multiresource", benchmark)
