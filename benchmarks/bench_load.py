"""Service-edge load benchmark: asyncio edge vs threaded edge under open load.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_load.py --out BENCH_PR9.json

Three stages, each against in-process servers on the loopback:

* ``capacity`` — closed-loop saturation: ``--connections`` keep-alive
  clients hammer a read-heavy endpoint mix (95% reads served from the
  aio edge's published view, 5% writes) for ``--duration`` seconds.
  The headline is the sustained req/s of each edge and their
  dimensionless ``aio/thread`` ratio — the PR-9 acceptance bar is
  ratio >= 3 on a quiet machine (``--min-ratio 3``).
* ``latency`` — open-loop Poisson arrivals at half the *threaded* edge's
  measured capacity, offered identically to both edges.  Open-loop
  means latency is measured from the scheduled arrival, so a stalling
  server pays its queueing delay instead of silently slowing the
  client.  At half capacity both edges must sustain the offered rate
  with a zero error rate; reported axes are achieved req/s, p50/p99.
* ``shedding`` — an aio edge with a deliberately tiny intake bound
  (``--shed-max-pending``) takes an above-capacity write burst: the
  benchmark asserts the overload surfaces *only* as 429 +
  ``Retry-After`` (never a 5xx, never a hung connection) and reports
  the shed fraction.

``--baseline BENCH_PR9.json`` turns the run into a regression gate on the
dimensionless capacity ratio (machine-speed independent): exit non-zero
if ``aio/thread`` fell by more than ``--max-regression`` vs the baseline.
``--min-ratio`` additionally enforces an absolute floor.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.model.job import Job  # noqa: E402
from repro.model.site import Site  # noqa: E402
from repro.service.aio import AioServiceServer  # noqa: E402
from repro.service.daemon import AllocationService  # noqa: E402
from repro.service.http import ServiceServer  # noqa: E402
from repro.service.state import ClusterState, JobArrived  # noqa: E402

SEED = 20260808

#: Read-heavy endpoint mix (path, weight, is_write).  Reads dominate, as
#: they do for any allocator whose clients poll shares between submits.
READ_MIX = (
    ("GET", "/v1/allocate?fresh=false", 60),
    ("GET", "/v1/health", 25),
    ("GET", "/v1/stats", 10),
    ("GET", "/v1/jobs", 5),
)
WRITE_FRACTION = 0.05


# ----------------------------------------------------------------------
# Edges
# ----------------------------------------------------------------------
def _make_service(n_sites: int, n_jobs: int) -> AllocationService:
    state = ClusterState([Site(f"s{i}", 4.0) for i in range(n_sites)])
    service = AllocationService(state, max_delay=0.005)
    rng = random.Random(SEED)
    service.submit_all(
        [
            JobArrived(Job(f"seed{i}", {f"s{rng.randrange(n_sites)}": 1.0 + rng.random()}))
            for i in range(n_jobs)
        ]
    )
    service.allocation(fresh=True)  # warm cache + published answer
    return service


def _start_edge(kind: str, n_sites: int, n_jobs: int):
    """Returns ``(port, stop)`` for a freshly booted edge of ``kind``."""
    service = _make_service(n_sites, n_jobs)
    if kind == "aio":
        srv = AioServiceServer(service, port=0, quiet=True).start()
        return srv.port, srv.shutdown
    srv = ServiceServer(service, port=0, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()

    def stop():
        srv.shutdown()
        thread.join(timeout=10)
        service.close()

    return srv.port, stop


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class _Stats:
    __slots__ = ("latencies", "statuses", "errors", "lock")

    def __init__(self):
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.errors = 0
        self.lock = threading.Lock()

    def record(self, status: int, latency: float) -> None:
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            self.latencies.append(latency)

    def record_error(self) -> None:
        with self.lock:
            self.errors += 1

    def summary(self, wall: float) -> dict:
        lat = sorted(self.latencies)
        n = len(lat)

        def pct(p: float) -> float | None:
            return None if n == 0 else lat[min(n - 1, int(p * n))]

        completed = sum(self.statuses.values())
        bad = sum(v for k, v in self.statuses.items() if k >= 400)
        return {
            "requests": completed,
            "req_per_s": completed / wall if wall > 0 else 0.0,
            "p50_ms": None if n == 0 else 1e3 * pct(0.50),
            "p99_ms": None if n == 0 else 1e3 * pct(0.99),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "error_rate": (bad + self.errors) / max(1, completed + self.errors),
            "transport_errors": self.errors,
        }


def _pick(rng: random.Random, worker: int, n: int) -> tuple[str, str, bytes | None]:
    if rng.random() < WRITE_FRACTION:
        body = json.dumps(
            {"jobs": [{"name": f"w{worker}-{n}", "workload": {"s0": 1.0}}]}
        ).encode()
        return "POST", "/v1/jobs", body
    roll = rng.uniform(0, sum(w for _, _, w in READ_MIX))
    for method, path, weight in READ_MIX:
        roll -= weight
        if roll <= 0:
            return method, path, None
    return READ_MIX[0][0], READ_MIX[0][1], None


def _fire(conn: http.client.HTTPConnection, method: str, path: str, body: bytes | None) -> int:
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    resp = conn.getresponse()
    resp.read()
    return resp.status


def _closed_loop(port: int, connections: int, duration: float) -> dict:
    """Saturation: every connection fires back-to-back until the deadline."""
    stats = _Stats()
    stop = time.monotonic() + duration

    def worker(w: int) -> None:
        rng = random.Random(f"{SEED}-{w}")
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        n = 0
        while time.monotonic() < stop:
            method, path, body = _pick(rng, w, n)
            n += 1
            t0 = time.monotonic()
            try:
                status = _fire(conn, method, path, body)
            except (OSError, http.client.HTTPException):
                stats.record_error()
                conn.close()
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
                continue
            stats.record(status, time.monotonic() - t0)
        conn.close()

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(connections)]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return stats.summary(time.monotonic() - t0)


def _open_loop(port: int, rate: float, duration: float, connections: int, *, writes_only: bool = False) -> dict:
    """Poisson arrivals at ``rate`` req/s; latency from *scheduled* time."""
    rng = random.Random(SEED)
    arrivals: list[float] = []
    t = 0.0
    while t < duration:
        t += rng.expovariate(rate)
        arrivals.append(t)
    stats = _Stats()
    cursor = {"i": 0}
    cursor_lock = threading.Lock()
    t0 = time.monotonic()

    def worker(w: int) -> None:
        wrng = random.Random(f"{SEED}-open-{w}")
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        n = 0
        while True:
            with cursor_lock:
                i = cursor["i"]
                if i >= len(arrivals):
                    break
                cursor["i"] = i + 1
            due = t0 + arrivals[i]
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if writes_only:
                n += 1
                body = json.dumps(
                    {"jobs": [{"name": f"b{w}-{n}", "workload": {"s0": 1.0}}]}
                ).encode()
                method, path = "POST", "/v1/jobs"
            else:
                method, path, body = _pick(wrng, w, n)
                n += 1
            try:
                status = _fire(conn, method, path, body)
            except (OSError, http.client.HTTPException):
                stats.record_error()
                conn.close()
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
                continue
            stats.record(status, time.monotonic() - due)
        conn.close()

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(connections)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    out = stats.summary(time.monotonic() - t0)
    out["offered_req_per_s"] = rate
    return out


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
def stage_capacity(args) -> dict:
    rows = {}
    for kind in ("thread", "aio"):
        best = None
        for _ in range(args.repeats):
            port, stop = _start_edge(kind, args.sites, args.jobs)
            try:
                run = _closed_loop(port, args.connections, args.duration)
            finally:
                stop()
            if best is None or run["req_per_s"] > best["req_per_s"]:
                best = run
        rows[kind] = best
        print(
            f"  capacity[{kind}]: {best['req_per_s']:8.0f} req/s  "
            f"p99 {best['p99_ms']:.2f} ms  err {best['error_rate']:.4f}"
        )
    ratio = rows["aio"]["req_per_s"] / max(1e-9, rows["thread"]["req_per_s"])
    print(f"  capacity ratio aio/thread: {ratio:.2f}x")
    return {"edges": rows, "aio_over_thread": ratio}


def stage_latency(args, thread_capacity: float) -> dict:
    rate = max(10.0, 0.5 * thread_capacity)
    rows = {}
    for kind in ("thread", "aio"):
        port, stop = _start_edge(kind, args.sites, args.jobs)
        try:
            run = _open_loop(port, rate, args.duration, args.connections)
        finally:
            stop()
        rows[kind] = run
        print(
            f"  latency[{kind}] @ {rate:.0f} req/s offered: achieved "
            f"{run['req_per_s']:8.0f} req/s  p99 {run['p99_ms']:.2f} ms  "
            f"err {run['error_rate']:.4f}"
        )
    return {"offered_req_per_s": rate, "edges": rows}


def stage_shedding(args) -> dict:
    service = _make_service(args.sites, args.jobs)
    srv = AioServiceServer(service, port=0, max_pending=args.shed_max_pending, quiet=True).start()
    # enough in-flight writers to actually overflow the intake bound —
    # with too few connections the stage proves nothing
    connections = max(args.connections, 4 * args.shed_max_pending)
    try:
        run = _open_loop(srv.port, args.shed_rate, args.duration, connections, writes_only=True)
    finally:
        srv.shutdown()
    statuses = {int(k) for k in run["statuses"]}
    bad = statuses - {202, 429}
    shed = run["statuses"].get("429", 0)
    run["shed_fraction"] = shed / max(1, run["requests"])
    run["overload_is_429_only"] = not bad
    print(
        f"  shedding @ {args.shed_rate:.0f} writes/s, max_pending={args.shed_max_pending}: "
        f"{run['shed_fraction']:.2%} shed, statuses {run['statuses']}"
    )
    if bad:
        print(f"  FAIL: overload leaked non-429 errors: {sorted(bad)}")
    return run


# ----------------------------------------------------------------------
# Gate + entry
# ----------------------------------------------------------------------
def _gate(report: dict, args) -> int:
    failures = []
    ratio = report["capacity"]["aio_over_thread"]
    if args.min_ratio is not None and ratio < args.min_ratio:
        failures.append(f"capacity ratio {ratio:.2f}x below the --min-ratio floor {args.min_ratio}x")
    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_ratio = base["capacity"]["aio_over_thread"]
        if ratio < base_ratio / args.max_regression:
            failures.append(
                f"capacity ratio regressed: {ratio:.2f}x vs baseline {base_ratio:.2f}x "
                f"(allowed {args.max_regression}x)"
            )
    for kind, row in report["latency"]["edges"].items():
        if row["error_rate"] > 0.0:
            failures.append(f"latency[{kind}] error rate {row['error_rate']:.4f} != 0 under capacity")
    if not report["shedding"]["overload_is_429_only"]:
        failures.append("overload surfaced non-429 errors")
    if report["shedding"]["shed_fraction"] == 0.0:
        failures.append("shedding stage never shed - the 429-only assertion is vacuous")
    if math.isfinite(args.max_p99_ms):
        p99 = report["latency"]["edges"]["aio"]["p99_ms"]
        if p99 is not None and p99 > args.max_p99_ms:
            failures.append(f"aio p99 {p99:.1f} ms above --max-p99-ms {args.max_p99_ms}")
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0, help="seconds per stage run")
    parser.add_argument("--connections", type=int, default=8, help="concurrent keep-alive clients")
    parser.add_argument("--repeats", type=int, default=2, help="capacity trials per edge (best kept)")
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=24, help="seed jobs resident in the cluster")
    parser.add_argument("--shed-rate", type=float, default=2000.0, help="offered write rate for shedding")
    parser.add_argument("--shed-max-pending", type=int, default=4)
    parser.add_argument("--out", type=Path, default=None, help="write the JSON report here")
    parser.add_argument("--baseline", type=Path, default=None, help="gate against this report")
    parser.add_argument("--max-regression", type=float, default=1.5)
    parser.add_argument("--min-ratio", type=float, default=None, help="absolute aio/thread floor")
    parser.add_argument("--max-p99-ms", type=float, default=float("inf"))
    args = parser.parse_args(argv)

    print(f"capacity: closed loop, {args.connections} connections, {args.duration}s x{args.repeats}")
    capacity = stage_capacity(args)
    print("latency: open-loop Poisson at half thread-edge capacity")
    latency = stage_latency(args, capacity["edges"]["thread"]["req_per_s"])
    print("shedding: above-capacity write burst against a tiny intake bound")
    shedding = stage_shedding(args)

    report = {
        "benchmark": "bench_load",
        "config": {
            "duration_s": args.duration,
            "connections": args.connections,
            "repeats": args.repeats,
            "sites": args.sites,
            "jobs": args.jobs,
            "write_fraction": WRITE_FRACTION,
            "shed_rate": args.shed_rate,
            "shed_max_pending": args.shed_max_pending,
        },
        "capacity": capacity,
        "latency": latency,
        "shedding": shedding,
    }
    if args.out:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return _gate(report, args)


if __name__ == "__main__":
    raise SystemExit(main())
