"""F1 — Allocation balance (Jain index, CoV) vs workload skew.

Paper claim: "AMF performs significantly better in balancing resource
allocation ... particularly when the workload distribution of jobs among
sites is highly skewed."  Expected shape: AMF's Jain index stays near the
top while PSMF's drops as theta grows.
"""

from repro.analysis.experiments import run_f1_balance_vs_skew


def test_f1_balance_vs_skew(run_once):
    out = run_once(run_f1_balance_vs_skew, scale=0.5, seeds=(0, 1), thetas=(0.0, 0.5, 1.0, 1.5, 2.0))
    sw = out.data["sweep"]
    # shape assertion: AMF at least as balanced everywhere
    for theta in sw.x_values:
        assert sw.metric_at("amf/jain", theta) >= sw.metric_at("psmf/jain", theta) - 1e-9
