"""X4 (extension) — the price of locality vs workload skew.

Measures each policy's poorest job against the locality-oblivious
upper bound (all capacity pooled).  Expected shape: AMF pays a far lower
locality price than PSMF, and PSMF's price explodes with skew.
"""

from repro.analysis.experiments import run_x4_price_of_locality


def test_x4_price_of_locality(run_once):
    out = run_once(run_x4_price_of_locality, scale=0.4, seeds=(0, 1), thetas=(0.0, 1.0, 2.0))
    sw = out.data["sweep"]
    for theta in sw.x_values:
        # the oblivious bound really is an upper bound on the min level
        assert sw.metric_at("amf/min_level", theta) <= sw.metric_at("oblivious/min_level", theta) * 1.001
        # AMF pays less for locality than the baseline
        assert sw.metric_at("amf/locality_price", theta) <= sw.metric_at("psmf/locality_price", theta) + 1e-9
    # and PSMF's price grows with skew
    assert sw.metric_at("psmf/locality_price", 2.0) > sw.metric_at("psmf/locality_price", 0.0)
