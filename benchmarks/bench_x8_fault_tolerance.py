"""X8 (extension) — fault tolerance under Poisson site churn.

Fairness (time-averaged Jain), completion and the work ledger per policy
when sites fail and recover mid-run, every policy behind the
ResilientPolicy fallback chain (docs/robustness.md).  Claim: AMF stays
closer to the static fairness bound than per-site max-min under churn.
"""

import numpy as np

from repro.analysis.experiments import run_x8_fault_tolerance


def test_x8_fault_tolerance(run_once):
    out = run_once(
        run_x8_fault_tolerance,
        scale=0.3,
        seeds=(0,),
        mtbf_factors=(4.0, 1.0),
        policies=("psmf", "amf"),
    )
    sw = out.data["sweep"]
    for name in ("psmf", "amf"):
        for jct in sw.series([f"{name}/mean_jct"])[f"{name}/mean_jct"]:
            assert np.isfinite(jct) and jct > 0.0, name
        for jain in sw.series([f"{name}/time_avg_jain"])[f"{name}/time_avg_jain"]:
            assert 0.0 <= jain <= 1.0 + 1e-9, name
        for lost in sw.series([f"{name}/work_lost"])[f"{name}/work_lost"]:
            assert lost >= 0.0, name
