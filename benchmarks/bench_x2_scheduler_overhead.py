"""X2 (extension) — per-event scheduling overhead of each policy.

Quantifies what AMF's fairness costs at runtime: max-flow solves on every
arrival/completion vs PSMF's closed-form water-filling.
"""

from repro.analysis.experiments import run_x2_scheduler_overhead


def test_x2_scheduler_overhead(run_once):
    out = run_once(run_x2_scheduler_overhead, scale=0.4, policies=("psmf", "amf", "amf-ct-quick"))
    stats = out.data["stats"]
    # the baseline's closed-form water-filling is the cheapest
    assert stats["psmf"]["mean_ms"] <= stats["amf"]["mean_ms"]
    # everything stays interactive (well under a second per event)
    for name, s in stats.items():
        assert s["mean_ms"] < 1000.0, name
