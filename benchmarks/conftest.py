"""Benchmark configuration.

Every module regenerates one figure/table of the paper (DESIGN.md §4).
``pytest benchmarks/ --benchmark-only`` runs each experiment once at reduced
scale and prints the regenerated series alongside the timing; the CLI
(``python -m repro.cli experiment all``) runs the same experiments at full
scale.  ``-s`` shows the printed tables.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark and print it."""

    def runner(fn, /, **kwargs):
        out = benchmark.pedantic(fn, kwargs=kwargs, iterations=1, rounds=1)
        print()
        print(out.text)
        return out

    return runner
