"""Benchmark configuration.

Every module regenerates one figure/table of the paper (DESIGN.md §4).
``pytest benchmarks/ --benchmark-only`` runs each experiment once at reduced
scale and prints the regenerated series alongside the timing; the CLI
(``python -m repro.cli experiment all``) runs the same experiments at full
scale.  ``-s`` shows the printed tables.

Two extras for the perf tooling (docs/performance.md):

* ``--workers N`` routes every sweep grid inside the experiments through
  the :mod:`repro.analysis.parallel` process pool.
* ``REPRO_BENCH_JSON=<path>`` collects the timings that benches register
  via the ``record_bench`` fixture into one machine-readable JSON file at
  session end (the CI smoke job uploads it as an artifact).
"""

import json
import os
from pathlib import Path

import pytest

_BENCH_RECORDS: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=0,
        help="fan experiment sweep grids over N processes (0 = REPRO_WORKERS or serial)",
    )


@pytest.fixture(autouse=True, scope="session")
def _configure_workers(request):
    workers = request.config.getoption("--workers")
    if workers:
        from repro.analysis.parallel import set_default_workers

        set_default_workers(workers)
        yield
        set_default_workers(None)
    else:
        yield


@pytest.fixture
def record_bench():
    """Register one benchmark's timing for the REPRO_BENCH_JSON export."""

    def recorder(name: str, benchmark) -> None:
        stats = getattr(benchmark, "stats", None)
        stats = getattr(stats, "stats", stats)  # pytest-benchmark nests them
        _BENCH_RECORDS.append(
            {
                "name": name,
                "mean_s": getattr(stats, "mean", None),
                "min_s": getattr(stats, "min", None),
                "rounds": getattr(stats, "rounds", None),
            }
        )

    return recorder


def pytest_sessionfinish(session, exitstatus):
    out = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if not out or not _BENCH_RECORDS:
        return
    Path(out).write_text(json.dumps({"benches": _BENCH_RECORDS}, indent=2) + "\n")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark and print it."""

    def runner(fn, /, **kwargs):
        out = benchmark.pedantic(fn, kwargs=kwargs, iterations=1, rounds=1)
        print()
        print(out.text)
        return out

    return runner
