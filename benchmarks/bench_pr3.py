"""Parametric-engine benchmark: warm λ-probes vs the cold legacy path.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_pr3.py --out BENCH_PR3.json

Three stages, each an A/B on identical instances:

* ``flow_probe`` — ``amf_levels`` + ``amf_levels_bisect`` with the
  ``parametric`` oracle vs the ``legacy`` per-probe network rebuild, on the
  F8 scalability sizes.  Levels are asserted equal; the headline number is
  the probe-time speedup.
* ``kernel`` — raw max-flow on the same bipartite instances:
  :class:`ArrayFlowGraph` vs the pointer-based :class:`Dinic`.
* ``service`` — the X9-style churn loop through
  :class:`IncrementalAmfSolver` with each oracle; reports p50 solve time.

``--baseline BENCH_PR3.json`` turns the run into a regression gate: the
*dimensionless* warm/cold ratio of the flow_probe stage is compared against
the baseline's ratio (machine-speed independent), and the process exits
non-zero if it regressed by more than ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect  # noqa: E402
from repro.flownet.arrayflow import ArrayFlowGraph  # noqa: E402
from repro.service.solver import IncrementalAmfSolver  # noqa: E402
from repro.service.state import ClusterState  # noqa: E402
from repro.workload.arrivals import ArrivalSpec, generate_churn_schedule  # noqa: E402
from repro.workload.generator import WorkloadSpec, generate_cluster  # noqa: E402


def _scaled(n: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(n * scale)))


def stage_flow_probe(scale: float, repeats: int) -> dict:
    """amf_levels + bisect: parametric vs legacy oracle on F8 sizes."""
    sizes = [(_scaled(50, scale, 10), _scaled(10, scale, 3)),
             (_scaled(100, scale, 10), _scaled(20, scale, 3)),
             (_scaled(200, scale, 10), _scaled(20, scale, 3))]
    rows = []
    for n_jobs, n_sites in sizes:
        cluster = generate_cluster(
            WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=1.2), np.random.default_rng(0)
        )
        timings = {"legacy": [], "parametric": []}
        counters = {}
        for oracle in ("legacy", "parametric"):
            levels = None
            for _ in range(repeats):
                diag = AmfDiagnostics()
                t0 = time.perf_counter()
                levels = amf_levels(cluster, diagnostics=diag, oracle=oracle)
                amf_levels_bisect(cluster, diagnostics=diag, oracle=oracle)
                timings[oracle].append(time.perf_counter() - t0)
            counters[oracle] = {
                "feasibility_solves": diag.feasibility_solves,
                "probes_warm": diag.probes_warm,
                "probes_cold": diag.probes_cold,
                "probes_early_accept": diag.probes_early_accept,
                "probes_cut_reject": diag.probes_cut_reject,
                "probes_reused": diag.probes_reused,
            }
            if oracle == "legacy":
                ref_levels = levels
            else:
                np.testing.assert_allclose(levels, ref_levels, atol=1e-7, rtol=1e-7)
        legacy_ms = 1e3 * min(timings["legacy"])
        parametric_ms = 1e3 * min(timings["parametric"])
        rows.append(
            {
                "n_jobs": n_jobs,
                "n_sites": n_sites,
                "legacy_ms": legacy_ms,
                "parametric_ms": parametric_ms,
                "speedup": legacy_ms / parametric_ms,
                "counters": counters,
            }
        )
    total_legacy = sum(r["legacy_ms"] for r in rows)
    total_par = sum(r["parametric_ms"] for r in rows)
    return {
        "rows": rows,
        "legacy_ms": total_legacy,
        "parametric_ms": total_par,
        "speedup": total_legacy / total_par,
        "ratio": total_par / total_legacy,  # the machine-independent gate metric
    }


def stage_breakpoint_axis(scale: float, repeats: int) -> dict:
    """Warm-probe gain as a function of leximin breakpoint *count*.

    :func:`repro.workload.generator.breakpoint_ladder` instances isolate the
    axis the F8 sizes hide: Zipf workloads collapse to a handful of distinct
    levels, ladders have exactly ``k``.  Bisection probe counts scale with
    the number of distinct levels, so this is where warm reuse compounds.
    Kept to small ``k`` here — the legacy arm rebuilds a pointer network per
    probe and is quadratic-ish along this axis (benchmarks/bench_pr8.py owns
    the large-``k`` story against the ggt sweep).
    """
    from repro.workload.generator import breakpoint_ladder

    ks = [k for k in (4, 8, 16) if k <= max(8, int(round(16 * scale)))]
    rows = []
    for k in ks:
        cluster = breakpoint_ladder(k)
        timings = {"legacy": [], "parametric": []}
        ref_levels = None
        for oracle in ("legacy", "parametric"):
            levels = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                levels = amf_levels_bisect(cluster, tol=1e-6, oracle=oracle)
                timings[oracle].append(time.perf_counter() - t0)
            if oracle == "legacy":
                ref_levels = levels
            else:
                np.testing.assert_allclose(levels, ref_levels, atol=1e-7, rtol=1e-7)
        legacy_ms = 1e3 * min(timings["legacy"])
        parametric_ms = 1e3 * min(timings["parametric"])
        rows.append(
            {
                "breakpoints": k,
                "n_jobs": cluster.n_jobs,
                "legacy_ms": legacy_ms,
                "parametric_ms": parametric_ms,
                "speedup": legacy_ms / parametric_ms,
            }
        )
    total_legacy = sum(r["legacy_ms"] for r in rows)
    total_par = sum(r["parametric_ms"] for r in rows)
    return {
        "rows": rows,
        "legacy_ms": total_legacy,
        "parametric_ms": total_par,
        "speedup": total_legacy / total_par,
    }


def stage_kernel(scale: float, repeats: int) -> dict:
    """The λ-probe workload at the raw kernel level.

    An ascending sequence of source-capacity vectors over one fixed
    bipartite topology — ``ArrayFlowGraph`` applies the deltas with
    :meth:`increase_capacity` and warm-continues, the legacy path does what
    ``build_network`` did per probe: rebuild the pointer graph and solve
    cold with :class:`Dinic`.  Values are asserted equal per step.  A
    one-shot cold solve is reported alongside for honesty — on a single
    cold solve the two engines are comparable (augmentation-order luck
    decides); the warm sequence is where the array kernel earns its keep.
    """
    from repro.flownet.dinic import Dinic
    from repro.flownet.graph import FlowGraph

    n_jobs, n_sites = _scaled(300, scale, 20), _scaled(30, scale, 4)
    cluster = generate_cluster(
        WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=1.2), np.random.default_rng(1)
    )
    demand = cluster.aggregate_demand
    caps = cluster.demand_caps
    src, snk = 0, n_jobs + n_sites + 1
    tails, heads, capacities = [], [], []
    for i in range(n_jobs):
        tails.append(src), heads.append(1 + i), capacities.append(0.0)
    for i in range(n_jobs):
        for j in np.flatnonzero(caps[i] > 0):
            tails.append(1 + i), heads.append(1 + n_jobs + int(j)), capacities.append(float(caps[i, j]))
    for j in range(n_sites):
        tails.append(1 + n_jobs + j), heads.append(snk), capacities.append(float(cluster.capacities[j]))

    fractions = np.linspace(0.1, 0.9, 12)

    def legacy_sequence() -> list[float]:
        values = []
        for frac in fractions:
            g = FlowGraph()
            for k, (t, h, c) in enumerate(zip(tails, heads, capacities)):
                g.add_edge(t, h, c if k >= n_jobs else float(frac * demand[k]))
            values.append(Dinic(g).max_flow(src, snk).value)
        return values

    def warm_sequence() -> list[float]:
        ag = ArrayFlowGraph(snk + 1, tails, heads, capacities)
        values, total = [], 0.0
        prev = np.zeros(n_jobs)
        for frac in fractions:
            tgt = frac * demand
            for i in range(n_jobs):
                ag.increase_capacity(2 * i, float(tgt[i] - prev[i]))
            prev = tgt
            total += ag.max_flow(src, snk)
            values.append(total)
        return values

    legacy_t, warm_t, cold_legacy_t, cold_array_t = [], [], [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        legacy_values = legacy_sequence()
        legacy_t.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        warm_values = warm_sequence()
        warm_t.append(time.perf_counter() - t0)

        g = FlowGraph()
        for k, (t, h, c) in enumerate(zip(tails, heads, capacities)):
            g.add_edge(t, h, c if k >= n_jobs else float(0.5 * demand[k]))
        t0 = time.perf_counter()
        cold_legacy = Dinic(g).max_flow(src, snk).value
        cold_legacy_t.append(time.perf_counter() - t0)
        ag = ArrayFlowGraph(
            snk + 1, tails, heads,
            [c if k >= n_jobs else float(0.5 * demand[k]) for k, c in enumerate(capacities)],
        )
        t0 = time.perf_counter()
        cold_array = ag.max_flow(src, snk)
        cold_array_t.append(time.perf_counter() - t0)
    np.testing.assert_allclose(warm_values, legacy_values, atol=1e-6, rtol=1e-9)
    assert abs(cold_legacy - cold_array) < 1e-6 * max(1.0, cold_legacy)
    legacy_ms, warm_ms = 1e3 * min(legacy_t), 1e3 * min(warm_t)
    return {
        "n_jobs": n_jobs,
        "n_sites": n_sites,
        "n_edges": len(tails),
        "probes": len(fractions),
        "legacy_ms": legacy_ms,
        "parametric_ms": warm_ms,
        "speedup": legacy_ms / warm_ms,
        "cold_oneshot": {
            "legacy_ms": 1e3 * min(cold_legacy_t),
            "array_ms": 1e3 * min(cold_array_t),
            "flow_value": cold_legacy,
        },
    }


def stage_service(scale: float) -> dict:
    """X9-style churn through IncrementalAmfSolver, p50 per oracle."""
    n_arrivals = _scaled(150, scale, 10)
    n_sites = _scaled(10, scale, 3)
    rng = np.random.default_rng(2)
    spec = ArrivalSpec(
        workload=WorkloadSpec(n_jobs=n_arrivals, n_sites=n_sites, theta=1.2), load=0.8
    )
    sites, schedule = generate_churn_schedule(rng=rng, spec=spec, target_population=_scaled(40, scale, 6))

    out = {}
    for oracle in ("legacy", "parametric"):
        state = ClusterState(sites)
        solver = IncrementalAmfSolver(oracle=oracle)
        samples = []
        from repro.service import events_from_schedule

        for event in events_from_schedule(schedule):
            applied, _ = state.apply_all([event])
            if not applied or state.n_jobs == 0:
                continue
            cluster = state.snapshot()
            t0 = time.perf_counter()
            solver(cluster)
            samples.append(time.perf_counter() - t0)
        out[oracle] = {
            "solves": len(samples),
            "p50_ms": 1e3 * statistics.median(samples),
            "mean_ms": 1e3 * statistics.fmean(samples),
            "feasibility_solves": solver.stats.feasibility_solves,
            "probes_reused": solver.stats.probes_reused,
        }
    out["p50_speedup"] = out["legacy"]["p50_ms"] / out["parametric"]["p50_ms"]
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0, help="instance size scale")
    ap.add_argument("--repeats", type=int, default=3, help="timed repeats (min is reported)")
    ap.add_argument("--out", default="BENCH_PR3.json", help="output JSON path")
    ap.add_argument("--baseline", help="committed BENCH_PR3.json to gate against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail if the flow-probe warm/cold ratio exceeds baseline by this factor",
    )
    args = ap.parse_args(argv)

    result = {
        "scale": args.scale,
        "repeats": args.repeats,
        "stages": {
            "flow_probe": stage_flow_probe(args.scale, args.repeats),
            "breakpoint_axis": stage_breakpoint_axis(args.scale, args.repeats),
            "kernel": stage_kernel(args.scale, args.repeats),
            "service": stage_service(args.scale),
        },
    }
    result["summary"] = {
        "flow_probe_speedup": result["stages"]["flow_probe"]["speedup"],
        "breakpoint_axis_speedup": result["stages"]["breakpoint_axis"]["speedup"],
        "kernel_speedup": result["stages"]["kernel"]["speedup"],
        "service_p50_speedup": result["stages"]["service"]["p50_speedup"],
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for stage, speedup in result["summary"].items():
        print(f"  {stage}: {speedup:.2f}x")

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        base_ratio = baseline["stages"]["flow_probe"]["ratio"]
        fresh_ratio = result["stages"]["flow_probe"]["ratio"]
        limit = args.max_regression * base_ratio
        print(
            f"regression gate: warm/cold ratio {fresh_ratio:.3f} "
            f"vs baseline {base_ratio:.3f} (limit {limit:.3f})"
        )
        if fresh_ratio > limit:
            print("FAIL: flow-probe ratio regressed beyond the gate", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
