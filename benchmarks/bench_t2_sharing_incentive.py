"""T2 — Sharing-incentive violations: frequency and magnitude, AMF vs AMF-E.

Expected: AMF violates SI on a substantial fraction of demand-capped,
skewed instances; enhanced AMF never does (floors are its construction).
"""

from repro.analysis.experiments import run_t2_sharing_incentive


def test_t2_sharing_incentive(run_once):
    out = run_once(run_t2_sharing_incentive, scale=0.6, seeds=tuple(range(8)))
    hub, zipf = out.data["hub"], out.data["zipf"]
    # hub-and-spoke is the violation's structural home: plain AMF fails there
    assert hub["amf"]["violated"] > 0, "expected SI violations under plain AMF on hub-and-spoke"
    # enhanced AMF repairs every instance in both families
    assert hub["amf-e"]["violated"] == 0
    assert zipf["amf-e"]["violated"] == 0
