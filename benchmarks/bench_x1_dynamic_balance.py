"""X1 (extension) — time-averaged dynamic balance vs skew.

F1 scores a static snapshot; this experiment integrates Jain's index over
the whole simulated batch, i.e. the balance the system actually sustains.
Expected shape: AMF above PSMF at every skew, same ordering as F1.
"""

from repro.analysis.experiments import run_x1_dynamic_balance


def test_x1_dynamic_balance(run_once):
    out = run_once(run_x1_dynamic_balance, scale=0.3, seeds=(0,), thetas=(0.0, 1.5))
    sw = out.data["sweep"]
    for theta in sw.x_values:
        assert sw.metric_at("amf/time_avg_jain", theta) >= sw.metric_at("psmf/time_avg_jain", theta) - 0.02
