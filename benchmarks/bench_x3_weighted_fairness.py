"""X3 (extension) — weighted AMF: aggregates track fairness weights.

Half the jobs carry weight r, half weight 1 (priority classes).  The
measured premium/standard aggregate ratio should follow r while demand is
elastic (this run is uncapped, so it should track r closely).
"""

import pytest

from repro.analysis.experiments import run_x3_weighted_fairness


def test_x3_weighted_fairness(run_once):
    out = run_once(run_x3_weighted_fairness, scale=0.4, seeds=(0, 1), weight_ratios=(1.0, 4.0))
    sw = out.data["sweep"]
    assert sw.metric_at("measured_ratio", 1.0) == pytest.approx(1.0, rel=0.15)
    measured = sw.metric_at("measured_ratio", 4.0)
    # tracks the target ratio (within generator noise and shared bottlenecks)
    assert 2.0 < measured <= 4.5
