"""T3 — Completion-time add-on ablation (DESIGN.md §6).

Variants on identical AMF aggregates: raw max-flow split (``amf``), naive
proportional split (``amf-prop``), single-round stretch (``amf-ct-quick``)
and full lexicographic stretch (``amf-ct``), all measured by simulated
batch JCT at high skew.
"""

import numpy as np

from repro.analysis.experiments import run_t3_ct_ablation


def _mean(values):
    arr = np.asarray(values, dtype=float)
    finite = arr[np.isfinite(arr)]
    return float(finite.mean()) if finite.size else np.nan


def test_t3_ct_ablation(run_once):
    out = run_once(run_t3_ct_ablation, scale=0.35, seeds=(0, 1))
    static, sim = out.data["static"], out.data["sim"]
    # the full stretch optimizer is at least as good as its single-round
    # variant on the metric both optimize (max stretch over finite jobs);
    # the raw max-flow split is NOT comparable on this metric because its
    # starved (infinite) edges are excluded from the finite statistics.
    best = _mean(static["stretch/max_stretch"])
    assert best <= _mean(static["stretch1/max_stretch"]) * 1.01 + 1e-9
    # the optimized splits never starve an edge; the raw max-flow split may
    assert _mean(static["stretch/starved"]) == 0.0
    assert _mean(static["stretch1/starved"]) == 0.0
    # dynamically, the CT add-on does not degrade the batch vs the raw split
    assert _mean(sim["amf-ct-quick/mean_jct"]) <= _mean(sim["amf/mean_jct"]) * 1.05
