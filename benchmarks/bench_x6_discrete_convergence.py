"""X6 (extension) — discrete slot scheduling converges to the fluid model.

The evidence that the paper's fluid evaluation predicts slot-based
reality: the discrete task-level scheduler's mean JCT approaches the
fluid simulator's as task granularity grows, and the AMF-vs-PSMF ordering
survives discretization.
"""

from repro.analysis.experiments import run_x6_discrete_convergence


def test_x6_discrete_convergence(run_once):
    out = run_once(
        run_x6_discrete_convergence, scale=0.5, seeds=(0,), granularities=(0.2, 1.0, 5.0)
    )
    sw = out.data["sweep"]
    # convergence from above: the gap shrinks with granularity
    coarse = sw.metric_at("amf/gap_pct", 0.2)
    fine = sw.metric_at("amf/gap_pct", 5.0)
    assert fine <= coarse + 1e-9
    assert fine < 10.0  # within 10% of fluid at fine granularity
    # the policy ordering survives discretization
    for g in sw.x_values:
        assert sw.metric_at("amf/discrete_jct", g) <= sw.metric_at("psmf/discrete_jct", g) * 1.08
