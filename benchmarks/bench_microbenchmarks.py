"""Micro-benchmarks of the core primitives (true repeated-measurement benches).

Not a paper figure — these track the library's own hot paths so performance
regressions in the flow engine or the water-filling kernels are visible.
"""

import numpy as np
import pytest

from repro.core.amf import amf_levels
from repro.core.persite import solve_psmf
from repro.core.waterfilling import water_fill
from repro.flownet.bipartite import build_network
from repro.flownet.parametric import ParametricFeasibility
from repro.workload.generator import WorkloadSpec, generate_cluster


@pytest.fixture(scope="module")
def medium_cluster():
    return generate_cluster(WorkloadSpec(n_jobs=100, n_sites=20, theta=1.2), np.random.default_rng(0))


def _lambda_schedule(cluster, k=12):
    """An AMF-like ascending-then-bisecting λ sequence for probe benches."""
    hi = float(np.max(cluster.aggregate_demand / np.maximum(cluster.weights, 1e-12)))
    rising = list(np.linspace(0.05, 0.6, k // 2))
    lo, up = 0.0, hi
    bisect = []
    for _ in range(k - len(rising)):
        mid = 0.5 * (lo + up)
        bisect.append(mid)
        up = mid  # descending, as when bisection keeps failing high
    return [lam * hi for lam in rising] + bisect


def test_bench_water_fill(benchmark):
    rng = np.random.default_rng(1)
    caps = rng.uniform(0.1, 5.0, 1000)
    weights = rng.uniform(0.5, 2.0, 1000)
    result = benchmark(water_fill, 300.0, caps, weights)
    assert result.sum() == pytest.approx(300.0, rel=1e-6)


def test_bench_feasibility_maxflow(benchmark, medium_cluster):
    targets = medium_cluster.aggregate_demand * 0.2

    def solve():
        net = build_network(medium_cluster, targets)
        return net.solve()

    outcome = benchmark(solve)
    assert outcome.demanded > 0


def test_bench_psmf(benchmark, medium_cluster):
    alloc = benchmark(solve_psmf, medium_cluster)
    assert alloc.utilization > 0


def test_bench_amf_levels(benchmark, medium_cluster):
    levels = benchmark.pedantic(amf_levels, args=(medium_cluster,), iterations=1, rounds=3)
    assert levels.min() >= 0


def test_bench_probe_sequence_legacy(benchmark, medium_cluster, record_bench):
    """Cold path: one FeasibilityNetwork build + solve per λ probe."""
    lams = _lambda_schedule(medium_cluster)
    weights = medium_cluster.weights
    caps = medium_cluster.aggregate_demand

    def run():
        verdicts = []
        for lam in lams:
            net = build_network(medium_cluster, np.minimum(lam * weights, caps))
            verdicts.append(net.solve().feasible)
        return verdicts

    verdicts = benchmark(run)
    assert len(verdicts) == len(lams)
    record_bench("probe_sequence_legacy", benchmark)


def test_bench_probe_sequence_parametric(benchmark, medium_cluster, record_bench):
    """Warm path: one ParametricFeasibility oracle across the same λ probes.

    Asserts verdict-for-verdict agreement with the cold path — the speedup
    is only meaningful if the answers are the same.
    """
    lams = _lambda_schedule(medium_cluster)
    weights = medium_cluster.weights
    caps = medium_cluster.aggregate_demand
    cold = []
    for lam in lams:
        net = build_network(medium_cluster, np.minimum(lam * weights, caps))
        cold.append(net.solve().feasible)

    def run():
        oracle = ParametricFeasibility(medium_cluster)
        return [oracle.probe(np.minimum(lam * weights, caps)).feasible for lam in lams]

    verdicts = benchmark(run)
    assert verdicts == cold
    record_bench("probe_sequence_parametric", benchmark)
