"""Micro-benchmarks of the core primitives (true repeated-measurement benches).

Not a paper figure — these track the library's own hot paths so performance
regressions in the flow engine or the water-filling kernels are visible.
"""

import numpy as np
import pytest

from repro.core.amf import amf_levels
from repro.core.persite import solve_psmf
from repro.core.waterfilling import water_fill
from repro.flownet.bipartite import build_network
from repro.workload.generator import WorkloadSpec, generate_cluster


@pytest.fixture(scope="module")
def medium_cluster():
    return generate_cluster(WorkloadSpec(n_jobs=100, n_sites=20, theta=1.2), np.random.default_rng(0))


def test_bench_water_fill(benchmark):
    rng = np.random.default_rng(1)
    caps = rng.uniform(0.1, 5.0, 1000)
    weights = rng.uniform(0.5, 2.0, 1000)
    result = benchmark(water_fill, 300.0, caps, weights)
    assert result.sum() == pytest.approx(300.0, rel=1e-6)


def test_bench_feasibility_maxflow(benchmark, medium_cluster):
    targets = medium_cluster.aggregate_demand * 0.2

    def solve():
        net = build_network(medium_cluster, targets)
        return net.solve()

    outcome = benchmark(solve)
    assert outcome.demanded > 0


def test_bench_psmf(benchmark, medium_cluster):
    alloc = benchmark(solve_psmf, medium_cluster)
    assert alloc.utilization > 0


def test_bench_amf_levels(benchmark, medium_cluster):
    levels = benchmark.pedantic(amf_levels, args=(medium_cluster,), iterations=1, rounds=3)
    assert levels.min() >= 0
