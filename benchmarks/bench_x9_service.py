"""X9 (extension) — the online allocation service under Poisson churn.

Closed-loop load generator (arrivals + exponential sojourns) driving the
full service pipeline — coalescing queue, fingerprint cache, warm-started
incremental AMF behind the resilient chain — on a virtual clock.  Every
warm solution is verified against a cold solve of the identical snapshot
through the identical pipeline (docs/service.md).  Claims: incremental ==
cold exactly, and the persisted cut basis makes warm re-solves measurably
faster (fewer max-flow feasibility probes per solve).
"""

from repro.analysis.experiments import run_x9_service


def test_x9_service(run_once):
    out = run_once(
        run_x9_service,
        scale=0.5,
        seeds=(0,),
        queries_per_batch=4,
    )
    agg = out.data["aggregate"]
    # the warm solver must agree with the cold oracle on every snapshot
    assert agg["max_abs_deviation"] <= agg["tolerance"]
    assert agg["fallbacks"] == 0.0
    # serving traffic between re-solves is absorbed by the cache
    assert agg["cache_hit_rate"] > 0.5
    # batching coalesces: fewer solves than events
    assert agg["solves"] < agg["events"]
    # the warm start pays for itself in max-flow feasibility probes
    assert agg["warm_feas_per_solve"] < agg["cold_feas_per_solve"]
