"""F2 — Min/max normalized allocation level vs workload skew.

Expected shape: under PSMF the minimum level collapses with skew (jobs
pinned at hot sites starve) while AMF keeps the min/max ratio near 1 for
the unsaturated jobs it can still equalize.
"""

from repro.analysis.experiments import run_f2_minmax_vs_skew


def test_f2_minmax_vs_skew(run_once):
    out = run_once(run_f2_minmax_vs_skew, scale=0.5, seeds=(0, 1), thetas=(0.0, 1.0, 2.0))
    sw = out.data["sweep"]
    for theta in sw.x_values:
        assert sw.metric_at("amf/min_max", theta) >= sw.metric_at("psmf/min_max", theta) - 1e-9
