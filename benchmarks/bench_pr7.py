"""Distributed control-plane benchmark: worker pool vs in-process sharding.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_pr7.py --out BENCH_PR7.json

Two stages:

* ``throughput`` — a K-block cluster solved repeatedly through (a) the
  in-process sharded solver and (b) a coordinator + N-worker pool
  (workers as real TCP servers).  Matrices are asserted bit-identical;
  the headline number is the distributed/in-process time ratio — the
  *price of the wire* (framing + JSON + TCP round-trips) for this shard
  mix.  The gate metric is dimensionless, so it is machine-speed
  independent.
* ``failover`` — mid-run, one worker's listener and sockets are torn
  down; the next solve trips the dead connection, fails over and replays
  the orphaned shards on the survivors with mirror-seeded bases.
  Reported: recovery time (the wall-clock cost of the first post-kill
  solve in healthy-solve units) and correctness of the recovered
  allocation.  The recovery solve is checked on per-job *aggregates*
  (the unique max-min fair quantity) against the cold reference, plus
  *exact* matrix equality between consecutive post-recovery solves:
  re-solving an unchanged shard against a warm cut basis can land on a
  different optimal placement even in-process (the service layer replays
  unchanged shards from the fingerprint cache instead), so cold-vs-warm
  matrix equality is not a property of any backend.  First-solve bit
  identity *is* asserted, in the throughput stage and the test suite.

``--baseline BENCH_PR7.json`` turns the run into a regression gate on the
throughput ratio and the failover recovery overhead (both dimensionless),
exiting non-zero past ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.sharding import ShardBasisPool, decompose, solve_shards, stitch  # noqa: E402
from repro.dist import SolverWorker, WorkerPool  # noqa: E402
from repro.model.cluster import Cluster  # noqa: E402
from repro.model.job import Job  # noqa: E402
from repro.model.site import Site  # noqa: E402
from repro.workload.generator import WorkloadSpec, generate_cluster  # noqa: E402


def _scaled(n: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(n * scale)))


def block_diagonal(
    k: int, jobs_per_block: int, sites_per_block: int, rng: np.random.Generator
) -> Cluster:
    """K independent generated components glued into one cluster."""
    sites: list[Site] = []
    jobs: list[Job] = []
    for b in range(k):
        sub = generate_cluster(
            WorkloadSpec(n_jobs=jobs_per_block, n_sites=sites_per_block, theta=1.2), rng
        )
        rename = {s.name: f"b{b}.{s.name}" for s in sub.sites}
        sites.extend(Site(rename[s.name], s.capacity) for s in sub.sites)
        jobs.extend(
            Job(
                f"b{b}.{job.name}",
                {rename[s]: w for s, w in job.workload.items()},
                {rename[s]: d for s, d in job.demand.items()},
                weight=job.weight,
            )
            for job in sub.jobs
        )
    return Cluster(tuple(sites), tuple(jobs))


def _local_solve(cluster, shards, bases):
    results = solve_shards(shards, bases=bases)
    return stitch(cluster, [(r.shard, r.matrix) for r in results])


def _pool_solve(cluster, shards, pool):
    results = pool.solve_shards(shards)
    return stitch(cluster, [(r.shard, r.matrix) for r in results])


def stage_throughput(scale: float, repeats: int, n_workers: int) -> dict:
    """In-process sharded vs distributed pool on the same K-block cluster."""
    k = 8
    cluster = block_diagonal(
        k, _scaled(20, scale, 3), _scaled(4, scale, 2), np.random.default_rng(0)
    )
    shards = decompose(cluster)
    assert len(shards) == k

    local_times: list[float] = []
    bases = ShardBasisPool(max_cuts=64)
    for _ in range(repeats):
        t0 = time.perf_counter()
        local_matrix = _local_solve(cluster, shards, bases)
        local_times.append(time.perf_counter() - t0)

    workers = [SolverWorker().start() for _ in range(n_workers)]
    dist_times: list[float] = []
    try:
        with WorkerPool([w.address for w in workers], heartbeat_interval=0.2) as pool:
            for _ in range(repeats):
                t0 = time.perf_counter()
                dist_matrix = _pool_solve(cluster, shards, pool)
                dist_times.append(time.perf_counter() - t0)
            rpcs = pool.stats.rpcs
    finally:
        for w in workers:
            w.close()

    if not np.array_equal(local_matrix, dist_matrix):
        raise AssertionError("distributed solve is not bit-identical to in-process")

    local_ms = 1e3 * min(local_times)
    dist_ms = 1e3 * min(dist_times)
    return {
        "blocks": k,
        "n_jobs": cluster.n_jobs,
        "n_sites": cluster.n_sites,
        "workers": n_workers,
        "repeats": repeats,
        "rpcs": rpcs,
        "local_ms": local_ms,
        "dist_ms": dist_ms,
        "bit_identical": True,
        # regression-gate metric: the price of the wire, dimensionless
        "ratio": dist_ms / local_ms,
    }


def stage_failover(scale: float, n_workers: int) -> dict:
    """Kill one worker mid-run; measure the recovery solve's overhead."""
    k = 6
    cluster = block_diagonal(
        k, _scaled(15, scale, 3), _scaled(3, scale, 2), np.random.default_rng(1)
    )
    shards = decompose(cluster)

    workers = [SolverWorker().start() for _ in range(n_workers)]
    try:
        with WorkerPool([w.address for w in workers], heartbeat_interval=0.2) as pool:
            reference = _pool_solve(cluster, shards, pool)  # cold
            t0 = time.perf_counter()
            _pool_solve(cluster, shards, pool)
            healthy_s = time.perf_counter() - t0  # warm, all workers alive

            victim_id = pool.live_workers[0]
            orphaned = len(pool.assignment.shards_of(victim_id))
            next(w for w in workers if w.worker_id == victim_id).close()

            t0 = time.perf_counter()
            recovered = _pool_solve(cluster, shards, pool)
            recovery_s = time.perf_counter() - t0  # trips the dead conn + replays

            if pool.stats.failovers != 1:
                raise AssertionError("expected exactly one failover")
            # the matrix is a placement (non-unique); the per-job
            # aggregates are the unique max-min fair quantity
            np.testing.assert_allclose(
                np.sort(recovered.sum(axis=1)),
                np.sort(reference.sum(axis=1)),
                atol=1e-7,
                rtol=1e-7,
            )
            steady = _pool_solve(cluster, shards, pool)
            if not np.array_equal(recovered, steady):
                raise AssertionError("post-recovery solves are not deterministic")
            return {
                "blocks": k,
                "workers": n_workers,
                "orphaned_shards": orphaned,
                "failovers": pool.stats.failovers,
                "reassignments": pool.stats.reassignments,
                "healthy_solve_ms": 1e3 * healthy_s,
                "recovery_solve_ms": 1e3 * recovery_s,
                "recovery_seconds": recovery_s,
                "aggregates_match_after_failover": True,
                "deterministic_after_recovery": True,
                # regression-gate metric: recovery cost in healthy-solve units
                "recovery_overhead": recovery_s / healthy_s,
            }
    finally:
        for w in workers:
            w.close()


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0, help="instance size scale")
    ap.add_argument("--repeats", type=int, default=3, help="timed repeats (min is reported)")
    ap.add_argument("--workers", type=int, default=2, help="solver workers in the pool")
    ap.add_argument("--out", default="BENCH_PR7.json", help="output JSON path")
    ap.add_argument("--baseline", help="committed BENCH_PR7.json to gate against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail if a gated ratio exceeds baseline by this factor",
    )
    args = ap.parse_args(argv)

    result = {
        "scale": args.scale,
        "repeats": args.repeats,
        "stages": {
            "throughput": stage_throughput(args.scale, args.repeats, args.workers),
            "failover": stage_failover(args.scale, args.workers),
        },
    }
    result["summary"] = {
        "wire_overhead_ratio": result["stages"]["throughput"]["ratio"],
        "failover_recovery_overhead": result["stages"]["failover"]["recovery_overhead"],
        "failover_recovery_seconds": result["stages"]["failover"]["recovery_seconds"],
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  distributed/in-process time ratio: {result['summary']['wire_overhead_ratio']:.2f}x")
    print(
        f"  failover recovery: {result['summary']['failover_recovery_seconds'] * 1e3:.1f} ms "
        f"({result['summary']['failover_recovery_overhead']:.2f}x a healthy solve)"
    )

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failed = False
        for stage, metric in (("throughput", "ratio"), ("failover", "recovery_overhead")):
            base = baseline["stages"][stage][metric]
            fresh = result["stages"][stage][metric]
            limit = args.max_regression * base
            print(f"regression gate: {stage}.{metric} {fresh:.3f} vs baseline {base:.3f} (limit {limit:.3f})")
            if fresh > limit:
                print(f"FAIL: {stage}.{metric} regressed beyond the gate", file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
