"""T1 — Property satisfaction matrix per policy (the paper's property table).

Expected: AMF and AMF-E are Pareto-efficient, envy-free and survive the
strategy-proofness probe; AMF alone is aggregate max-min fair; only AMF-E
is guaranteed sharing incentive; PSMF is not aggregate max-min fair.
"""

from repro.analysis.experiments import run_t1_properties


def test_t1_properties(run_once):
    out = run_once(run_t1_properties, scale=0.8, seeds=(0, 1, 2), sp_attempts=2)
    counters, total = out.data["counters"], out.data["total"]
    assert counters["amf"]["pareto"] == total
    assert counters["amf"]["max_min"] == total
    assert counters["amf"]["envy_free"] == total
    assert counters["amf"]["sp"] == total
    # the paper's table: AMF does NOT always satisfy sharing incentive...
    assert counters["amf"]["si"] < total
    # ...and enhanced AMF always does
    assert counters["amf-e"]["si"] == total
    # the baseline is NOT aggregate max-min fair in general
    assert counters["psmf"]["max_min"] < total
