"""F3 — Mean JCT of a simulated batch vs workload skew.

Paper claim: AMF "performs significantly better ... in job completion
time, particularly when the workload distribution of jobs among sites is
highly skewed."  The batch is simulated with reallocation at every event.
"""

from repro.analysis.experiments import run_f3_jct_vs_skew


def test_f3_jct_vs_skew(run_once):
    out = run_once(
        run_f3_jct_vs_skew,
        scale=0.3,
        seeds=(0, 1),
        thetas=(0.0, 1.0, 2.0),
        policies=("psmf", "amf", "amf-ct-quick"),
    )
    sw = out.data["sweep"]
    # AMF-family batch drain does not lose badly to PSMF at high skew
    assert sw.metric_at("amf/mean_jct", 2.0) <= sw.metric_at("psmf/mean_jct", 2.0) * 1.15
