"""Observability overhead gate: obs-off vs obs-on A/B on the solver hot path.

The :mod:`repro.obs` layer promises a near-free disabled path (one
attribute read per call site) and a cheap enabled path (counter folds at
solve granularity, spans around probes).  This benchmark prices both
against the same flow-probe workload ``bench_pr3.py`` uses for its
headline numbers, and **fails the build** when the enabled path costs more
than ``--max-overhead`` (default 1.05 = +5%)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out BENCH_OBS.json

Three configurations, timed on identical instances:

* ``off``       — registry and tracer disabled (the library default),
* ``metrics``   — registry enabled (counter folds, no spans),
* ``full``      — registry + tracer enabled (spans on every probe).

The gate compares ``full`` against ``off``; ``metrics`` is reported for
attribution.  Shared-machine noise swamps a 5% effect when the arms are
timed in separate blocks, so the statistic is drift-robust: every repeat
times all three arms back-to-back (one *pair*), the overhead of a repeat
is the within-pair ratio (slow minutes hit both arms alike and cancel),
and the reported overhead is the **median of per-repeat ratios** over the
workload total.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect  # noqa: E402
from repro.obs.registry import REGISTRY  # noqa: E402
from repro.obs.tracing import TRACER  # noqa: E402
from repro.workload.generator import WorkloadSpec, generate_cluster  # noqa: E402

CONFIGS = ("off", "metrics", "full")


def _scaled(n: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(n * scale)))


def _configure(config: str) -> None:
    REGISTRY.disable()
    TRACER.disable()
    TRACER.clear()
    if config in ("metrics", "full"):
        REGISTRY.enable()
    if config == "full":
        TRACER.enable()


def run(scale: float, repeats: int) -> dict:
    """Median of per-repeat paired ratios on the bench_pr3 flow-probe sizes."""
    sizes = [(_scaled(50, scale, 10), _scaled(10, scale, 3)),
             (_scaled(100, scale, 10), _scaled(20, scale, 3)),
             (_scaled(200, scale, 10), _scaled(20, scale, 3))]
    clusters = [
        generate_cluster(
            WorkloadSpec(n_jobs=n_jobs, n_sites=n_sites, theta=1.2), np.random.default_rng(0)
        )
        for n_jobs, n_sites in sizes
    ]
    # untimed warmup so allocator pools and numpy buffers are primed
    # identically for every arm
    for cluster in clusters:
        amf_levels(cluster, diagnostics=AmfDiagnostics())

    levels: dict[str, list[np.ndarray]] = {c: [None] * len(sizes) for c in CONFIGS}
    # totals[config][repeat] = workload total for that arm within the pair
    totals: dict[str, list[float]] = {c: [] for c in CONFIGS}
    per_size: dict[str, list[list[float]]] = {c: [[] for _ in sizes] for c in CONFIGS}
    for _ in range(repeats):
        for config in CONFIGS:  # back-to-back arms form one paired repeat
            _configure(config)
            total = 0.0
            for k, cluster in enumerate(clusters):
                diag = AmfDiagnostics()
                t0 = time.perf_counter()
                levels[config][k] = amf_levels(cluster, diagnostics=diag)
                amf_levels_bisect(cluster, diagnostics=diag)
                dt = time.perf_counter() - t0
                per_size[config][k].append(dt)
                total += dt
            totals[config].append(total)
    _configure("off")
    for k in range(len(sizes)):
        np.testing.assert_allclose(levels["full"][k], levels["off"][k], atol=1e-9, rtol=1e-9)
        np.testing.assert_allclose(levels["metrics"][k], levels["off"][k], atol=1e-9, rtol=1e-9)

    def paired_overhead(config: str) -> float:
        ratios = [t / off for t, off in zip(totals[config], totals["off"])]
        return float(statistics.median(ratios))

    rows = [
        {
            "n_jobs": n_jobs,
            "n_sites": n_sites,
            **{f"{c}_ms": 1e3 * min(per_size[c][k]) for c in CONFIGS},
            "full_overhead": float(
                statistics.median(
                    t / off for t, off in zip(per_size["full"][k], per_size["off"][k])
                )
            ),
        }
        for k, (n_jobs, n_sites) in enumerate(sizes)
    ]
    return {
        "rows": rows,
        **{f"{c}_ms": 1e3 * min(totals[c]) for c in CONFIGS},
        "metrics_overhead": paired_overhead("metrics"),
        "full_overhead": paired_overhead("full"),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0, help="instance size scale")
    ap.add_argument("--repeats", type=int, default=5, help="timed repeats (min is reported)")
    ap.add_argument("--out", default="BENCH_OBS.json", help="output JSON path")
    ap.add_argument(
        "--max-overhead",
        type=float,
        default=1.05,
        help="fail if obs-on / obs-off exceeds this ratio (1.05 = +5%%)",
    )
    args = ap.parse_args(argv)

    result = {"scale": args.scale, "repeats": args.repeats, "flow_probe": run(args.scale, args.repeats)}
    stage = result["flow_probe"]
    result["summary"] = {
        "metrics_overhead": stage["metrics_overhead"],
        "full_overhead": stage["full_overhead"],
        "max_overhead": args.max_overhead,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  metrics-only overhead: {100 * (stage['metrics_overhead'] - 1):+.2f}%")
    print(f"  metrics+traces overhead: {100 * (stage['full_overhead'] - 1):+.2f}%")

    if stage["full_overhead"] > args.max_overhead:
        print(
            f"FAIL: enabled-observability overhead {stage['full_overhead']:.3f} "
            f"exceeds the {args.max_overhead:.2f} gate",
            file=sys.stderr,
        )
        return 1
    print(f"gate OK: {stage['full_overhead']:.3f} <= {args.max_overhead:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
