"""GGT sweep benchmark: one-shot breakpoint recovery vs warm per-level probing.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_pr8.py --out BENCH_PR8.json

The axis is the *breakpoint count*: :func:`repro.workload.generator
.breakpoint_ladder` instances with ``k = 4 .. 256`` distinct leximin levels.
Classic Zipf instances collapse to a handful of levels, which hides what a
one-shot sweep buys; the ladder isolates it.

Two stages, each an A/B on identical instances with exact level equality
asserted (the solvers must agree to the last bit, not approximately):

* ``flow_probe`` — ``amf_levels_bisect(tol=1e-6)`` with the ``ggt`` oracle
  vs plain ``parametric``.  Bisection is probe-dominated (every level costs
  a log-sweep of feasibility probes), so this is where the sweep's
  cut-family pays: the headline number is the per-``k`` speedup and it must
  *grow* along the axis.
* ``fill`` — ``amf_levels`` the same way.  Reported for honesty, not gated:
  progressive filling's wall clock is dominated by cutting-plane pool
  arithmetic that is oracle-independent (docs/performance.md, layer 5), so
  the achievable ratio is structurally capped near 1x.

``--baseline BENCH_PR8.json`` turns the run into a regression gate: the
*dimensionless* ggt/parametric time ratio of the flow_probe stage is
compared against the baseline's ratio (machine-speed independent) and the
process exits non-zero if it regressed by more than ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.amf import AmfDiagnostics, amf_levels, amf_levels_bisect  # noqa: E402
from repro.workload.generator import breakpoint_ladder  # noqa: E402

#: The breakpoint axis (distinct leximin levels per instance).
BREAKPOINTS = (4, 16, 64, 256)

#: Bisection tolerance for the A/B.  1e-6 keeps both oracles on the same
#: bisection trajectory; at 1e-9 the final interval is narrower than the
#: oracles' warm-state float noise, so bit-identity is not well-posed there
#: (docs/performance.md, layer 5).
BISECT_TOL = 1e-6


def _axis(scale: float) -> list[int]:
    top = max(BREAKPOINTS[0], int(round(BREAKPOINTS[-1] * scale)))
    return [k for k in BREAKPOINTS if k <= top]


def _counters(diag: AmfDiagnostics) -> dict:
    return {
        "feasibility_solves": diag.feasibility_solves,
        "probes_warm": diag.probes_warm,
        "probes_cold": diag.probes_cold,
        "probes_early_accept": diag.probes_early_accept,
        "probes_cut_reject": diag.probes_cut_reject,
        "ggt_sweeps": diag.ggt_sweeps,
        "ggt_sweep_flows": diag.ggt_sweep_flows,
        "ggt_breakpoints": diag.ggt_breakpoints,
        "ggt_flows_avoided": diag.ggt_flows_avoided,
    }


def _stage(scale: float, repeats: int, solve) -> dict:
    rows = []
    for k in _axis(scale):
        cluster = breakpoint_ladder(k)
        timings: dict[str, list[float]] = {"parametric": [], "ggt": []}
        counters = {}
        levels: dict[str, np.ndarray] = {}
        for oracle in ("parametric", "ggt"):
            for _ in range(repeats):
                diag = AmfDiagnostics()
                t0 = time.perf_counter()
                levels[oracle] = solve(cluster, diag, oracle)
                timings[oracle].append(time.perf_counter() - t0)
            counters[oracle] = _counters(diag)
        if not (levels["ggt"] == levels["parametric"]).all():
            raise AssertionError(f"k={k}: ggt levels differ from parametric (bit-identity broken)")
        par_ms = 1e3 * min(timings["parametric"])
        ggt_ms = 1e3 * min(timings["ggt"])
        rows.append(
            {
                "breakpoints": k,
                "n_jobs": cluster.n_jobs,
                "n_sites": cluster.n_sites,
                "parametric_ms": par_ms,
                "ggt_ms": ggt_ms,
                "speedup": par_ms / ggt_ms,
                "counters": counters,
            }
        )
    total_par = sum(r["parametric_ms"] for r in rows)
    total_ggt = sum(r["ggt_ms"] for r in rows)
    return {
        "rows": rows,
        "parametric_ms": total_par,
        "ggt_ms": total_ggt,
        "speedup": total_par / total_ggt,
        "speedup_at_max_k": rows[-1]["speedup"],
        "ratio": total_ggt / total_par,  # the machine-independent gate metric
    }


def stage_flow_probe(scale: float, repeats: int) -> dict:
    """Bisection (probe-dominated): ggt vs parametric along the k axis."""

    def solve(cluster, diag, oracle):
        return amf_levels_bisect(cluster, tol=BISECT_TOL, diagnostics=diag, oracle=oracle)

    return _stage(scale, repeats, solve)


def stage_fill(scale: float, repeats: int) -> dict:
    """Progressive filling (pool-arithmetic-dominated): reported, not gated."""

    def solve(cluster, diag, oracle):
        return amf_levels(cluster, diagnostics=diag, oracle=oracle)

    return _stage(scale, repeats, solve)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0, help="breakpoint-axis scale (1.0 = up to k=256)")
    ap.add_argument("--repeats", type=int, default=3, help="timed repeats (min is reported)")
    ap.add_argument("--out", default="BENCH_PR8.json", help="output JSON path")
    ap.add_argument("--baseline", help="committed BENCH_PR8.json to gate against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail if the flow-probe ggt/parametric ratio exceeds baseline by this factor",
    )
    args = ap.parse_args(argv)

    result = {
        "scale": args.scale,
        "repeats": args.repeats,
        "breakpoints": _axis(args.scale),
        "stages": {
            "flow_probe": stage_flow_probe(args.scale, args.repeats),
            "fill": stage_fill(args.scale, args.repeats),
        },
    }
    result["summary"] = {
        "flow_probe_speedup": result["stages"]["flow_probe"]["speedup"],
        "flow_probe_speedup_at_max_k": result["stages"]["flow_probe"]["speedup_at_max_k"],
        "fill_speedup": result["stages"]["fill"]["speedup"],
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for row in result["stages"]["flow_probe"]["rows"]:
        print(f"  bisect k={row['breakpoints']:>4}: {row['speedup']:.2f}x")
    for stage, speedup in result["summary"].items():
        print(f"  {stage}: {speedup:.2f}x")

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        base_ratio = baseline["stages"]["flow_probe"]["ratio"]
        fresh_ratio = result["stages"]["flow_probe"]["ratio"]
        limit = args.max_regression * base_ratio
        print(
            f"regression gate: ggt/parametric ratio {fresh_ratio:.3f} "
            f"vs baseline {base_ratio:.3f} (limit {limit:.3f})"
        )
        if fresh_ratio > limit:
            print("FAIL: flow-probe ratio regressed beyond the gate", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
