"""F5 — Balance vs number of jobs at fixed skew (theta = 1.2)."""

from repro.analysis.experiments import run_f5_vs_njobs


def test_f5_vs_njobs(run_once):
    out = run_once(run_f5_vs_njobs, scale=0.4, seeds=(0, 1), n_jobs_values=(20, 60, 160))
    sw = out.data["sweep"]
    for n in sw.x_values:
        assert sw.metric_at("amf/jain", n) >= sw.metric_at("psmf/jain", n) - 1e-9
