"""AMRF engine benchmark: cold LPs vs warm bases vs table-cache hits.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_pr10.py --out BENCH_PR10.json

Three stages on crossing-dominance (cpu, mem) clusters — instances where
no resource dominates, so the scalar reduction cannot fire and every
solve pays the progressive-filling LP engine:

* ``churn`` — a sequence of perturbed clusters (one job's demand cap
  changes per step, the service's steady state).  Cold solves each from
  scratch; warm shares one :class:`~repro.multiresource.engine.AmrfBasis`
  across the sequence, so each LP starts from the previously binding
  site-resource rows.  Share profiles are asserted equal — the basis is
  an accelerator, never an approximation.
* ``table`` — repeat solves of an *unchanged* cluster against a
  :class:`~repro.multiresource.engine.TableCache` (the Precomputed-DRF
  serving pattern): after the first miss every solve is a fingerprint
  lookup.  The headline ``cached_speedup`` (cold / hit) is the PR's
  acceptance number and must clear ``--min-speedup`` (2x).
* ``routing`` — the same traffic spelled as an R=1 resource vector vs
  plain scalars.  Both route to the identical flow fast path
  (bit-identity is asserted), so the ratio near 1.0 *is* the price of
  the vector API on single-resource clusters.

``--baseline BENCH_PR10.json`` turns the run into a regression gate on
two dimensionless ratios (machine-speed independent): warm/cold LP time
and the R=1 routing overhead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.amf import AmfDiagnostics, solve_amf  # noqa: E402
from repro.model.cluster import Cluster  # noqa: E402
from repro.model.job import Job  # noqa: E402
from repro.model.site import Site  # noqa: E402
from repro.multiresource.engine import (  # noqa: E402
    AmrfBasis,
    TableCache,
    amrf_allocate,
    scalar_reduction,
)

#: (n_jobs, n_sites) per instance size.
SIZES = ((8, 4), (16, 6))

#: Perturbation steps per churn sequence.
STEPS = 6


def crossing_cluster(n: int, m: int, seed: int, cap_bump: int = -1) -> Cluster:
    """Crossing-dominance instance: half the jobs cpu-heavy, half mem-heavy.

    ``cap_bump`` perturbs one job's demand cap (the churn axis) without
    touching the rest, so consecutive clusters share their binding rows.
    """
    rng = np.random.default_rng(seed)
    sites = [
        Site(f"s{j}", {"cpu": float(rng.uniform(4.0, 12.0)), "mem": float(rng.uniform(8.0, 32.0))})
        for j in range(m)
    ]
    jobs = []
    for i in range(n):
        if i % 2 == 0:
            res = {"cpu": float(rng.uniform(1.0, 2.0)), "mem": float(rng.uniform(4.0, 8.0))}
        else:
            res = {"cpu": float(rng.uniform(4.0, 8.0)), "mem": float(rng.uniform(1.0, 2.0))}
        workload = {f"s{j}": 1.0 for j in range(m) if rng.random() < 0.8}
        if not workload:
            workload = {f"s{int(rng.integers(m))}": 1.0}
        demand = {s: float(rng.uniform(0.5, 3.0)) for s in workload}
        if i == cap_bump % n:
            demand = {s: d * 1.25 for s, d in demand.items()}
        jobs.append(Job(f"j{i}", workload, demand=demand, resources=res))
    cluster = Cluster(sites, jobs)
    if scalar_reduction(cluster) is not None:
        raise AssertionError("instance unexpectedly reducible — engine not exercised")
    return cluster


def _best_of(repeats: int, fn) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def stage_churn(repeats: int) -> dict:
    rows = []
    for n, m in SIZES:
        family = [crossing_cluster(n, m, seed=n, cap_bump=step) for step in range(STEPS)]

        def run_cold():
            return [amrf_allocate(c) for c in family]

        def run_warm():
            basis = AmrfBasis()
            return [amrf_allocate(c, basis=basis) for c in family]

        cold_allocs = run_cold()
        warm_allocs = run_warm()
        for a, b, c in zip(cold_allocs, warm_allocs, family):
            dom = c.dominant_factor()
            if not np.allclose(dom * a.matrix.sum(axis=1), dom * b.matrix.sum(axis=1), atol=1e-6):
                raise AssertionError("warm basis changed the share profile")
        cold_ms = 1e3 * _best_of(repeats, run_cold)
        warm_ms = 1e3 * _best_of(repeats, run_warm)
        d_cold, d_warm = AmfDiagnostics(), AmfDiagnostics()
        for c in family:
            amrf_allocate(c, diagnostics=d_cold)
        basis = AmrfBasis()
        for c in family:
            amrf_allocate(c, basis=basis, diagnostics=d_warm)
        rows.append(
            {
                "n_jobs": n,
                "n_sites": m,
                "steps": STEPS,
                "cold_ms": cold_ms,
                "warm_ms": warm_ms,
                "speedup": cold_ms / warm_ms,
                "cold_lps": d_cold.amrf_lps,
                "warm_lps": d_warm.amrf_lps,
                "warm_rows_reused": d_warm.amrf_basis_rows_reused,
            }
        )
    cold = sum(r["cold_ms"] for r in rows)
    warm = sum(r["warm_ms"] for r in rows)
    return {
        "rows": rows,
        "cold_ms": cold,
        "warm_ms": warm,
        "speedup": cold / warm,
        "ratio": warm / cold,  # machine-independent gate metric
    }


def stage_table(repeats: int) -> dict:
    rows = []
    for n, m in SIZES:
        cluster = crossing_cluster(n, m, seed=n)
        cold_ms = 1e3 * _best_of(repeats, lambda: amrf_allocate(cluster))
        cache = TableCache()
        first = amrf_allocate(cluster, table_cache=cache)
        diag = AmfDiagnostics()
        hit_ms = 1e3 * _best_of(
            max(repeats, 3), lambda: amrf_allocate(cluster, table_cache=cache, diagnostics=diag)
        )
        if diag.amrf_table_hits == 0 or diag.amrf_lps != 0:
            raise AssertionError("table cache did not serve the repeat solve")
        hit = amrf_allocate(cluster, table_cache=cache)
        if not np.array_equal(first.matrix, hit.matrix):
            raise AssertionError("table cache must serve the solved table verbatim")
        rows.append(
            {
                "n_jobs": n,
                "n_sites": m,
                "cold_ms": cold_ms,
                "hit_ms": hit_ms,
                "speedup": cold_ms / hit_ms,
            }
        )
    cold = sum(r["cold_ms"] for r in rows)
    hit = sum(r["hit_ms"] for r in rows)
    return {"rows": rows, "cold_ms": cold, "hit_ms": hit, "speedup": cold / hit}


def stage_routing(repeats: int) -> dict:
    """R=1 vector spelling vs scalar spelling of identical traffic."""
    rng = np.random.default_rng(7)
    n, m = 24, 8
    caps = rng.uniform(1.0, 8.0, m)
    support = rng.random((n, m)) < 0.6
    for i in range(n):
        if not support[i].any():
            support[i, int(rng.integers(m))] = True

    def build(vector: bool) -> Cluster:
        if vector:
            sites = [Site(f"s{j}", {"cpu": float(caps[j])}) for j in range(m)]
        else:
            sites = [Site(f"s{j}", float(caps[j])) for j in range(m)]
        return Cluster(
            sites,
            [
                Job(
                    f"j{i}",
                    {f"s{j}": 1.0 for j in range(m) if support[i, j]},
                    resources={"cpu": 1.0} if vector else {},
                )
                for i in range(n)
            ],
        )

    scalar, vector = build(False), build(True)
    a, b = solve_amf(scalar), solve_amf(vector)
    if not np.array_equal(a.matrix, b.matrix):
        raise AssertionError("R=1 routing is not bit-identical to the scalar solve")
    scalar_ms = 1e3 * _best_of(repeats, lambda: solve_amf(scalar))
    vector_ms = 1e3 * _best_of(repeats, lambda: solve_amf(vector))
    return {
        "n_jobs": n,
        "n_sites": m,
        "scalar_ms": scalar_ms,
        "vector_ms": vector_ms,
        "overhead": vector_ms / scalar_ms,  # machine-independent gate metric
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repeats", type=int, default=3, help="timed repeats (min is reported)")
    ap.add_argument("--out", default="BENCH_PR10.json", help="output JSON path")
    ap.add_argument("--baseline", help="committed BENCH_PR10.json to gate against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail if warm/cold or routing-overhead ratio exceeds baseline by this factor",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail unless the table-cache hit beats the cold AMRF solve by this factor",
    )
    args = ap.parse_args(argv)

    result = {
        "repeats": args.repeats,
        "sizes": list(SIZES),
        "stages": {
            "churn": stage_churn(args.repeats),
            "table": stage_table(args.repeats),
            "routing": stage_routing(args.repeats),
        },
    }
    result["summary"] = {
        "warm_speedup": result["stages"]["churn"]["speedup"],
        "cached_speedup": result["stages"]["table"]["speedup"],
        "routing_overhead": result["stages"]["routing"]["overhead"],
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for row in result["stages"]["churn"]["rows"]:
        print(
            f"  churn n={row['n_jobs']:>2} m={row['n_sites']}: {row['speedup']:.2f}x "
            f"({row['cold_lps']} -> {row['warm_lps']} LPs)"
        )
    for key, value in result["summary"].items():
        print(f"  {key}: {value:.2f}x")

    failed = False
    if result["summary"]["cached_speedup"] < args.min_speedup:
        print(
            f"FAIL: cached_speedup {result['summary']['cached_speedup']:.2f}x "
            f"below the {args.min_speedup:.1f}x acceptance bar"
        )
        failed = True
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        for stage, metric in (("churn", "ratio"), ("routing", "overhead")):
            base = baseline["stages"][stage][metric]
            fresh = result["stages"][stage][metric]
            limit = args.max_regression * base
            verdict = "OK" if fresh <= limit else "FAIL"
            print(f"  gate {stage}/{metric}: {fresh:.3f} vs baseline {base:.3f} (limit {limit:.3f}) {verdict}")
            if fresh > limit:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
