"""F4 — JCT distribution (deciles) at high skew (the paper's CDF figure)."""

import numpy as np

from repro.analysis.experiments import run_f4_jct_distribution


def test_f4_jct_distribution(run_once):
    out = run_once(run_f4_jct_distribution, scale=0.3, theta=1.5, policies=("psmf", "amf", "amf-ct-quick"))
    series = out.data["series"]
    for name, deciles in series.items():
        vals = np.asarray(deciles)
        # deciles are non-decreasing by construction
        assert (np.diff(vals) >= -1e-9).all(), name
