"""F6 — Balance vs number of sites at fixed skew (theta = 1.2)."""

from repro.analysis.experiments import run_f6_vs_nsites


def test_f6_vs_nsites(run_once):
    out = run_once(run_f6_vs_nsites, scale=0.4, seeds=(0, 1), n_sites_values=(4, 8, 16))
    sw = out.data["sweep"]
    for m in sw.x_values:
        assert sw.metric_at("amf/jain", m) >= sw.metric_at("psmf/jain", m) - 1e-9
