"""X5 (extension) — allocation churn: the operational price of reallocation.

Fraction of cluster capacity reassigned per scheduling event, per policy.
There is no a-priori winner; the point is to surface the trade-off the
fluid JCT metrics hide.
"""

import numpy as np

from repro.analysis.experiments import run_x5_allocation_churn


def test_x5_allocation_churn(run_once):
    out = run_once(run_x5_allocation_churn, scale=0.4, seeds=(0,), policies=("psmf", "amf"))
    acc = out.data["acc"]
    for name, vals in acc.items():
        mean = float(np.mean(vals))
        assert 0.0 <= mean <= 2.0, name  # L1 churn of a capacity-bounded system
