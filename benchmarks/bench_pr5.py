"""Shard-decomposition benchmark: per-component AMF vs the monolithic solve.

Standalone (no pytest) so CI and developers get one machine-readable
artifact::

    PYTHONPATH=src python benchmarks/bench_pr5.py --out BENCH_PR5.json

Two stages:

* ``decomposition`` — a block-diagonal cluster of K independent components
  solved monolithically, sharded serially, and sharded with ``--workers``
  fan-out.  Aggregates are asserted equal across all three; the headline
  number is the sharded/monolithic speedup.  The cutting-plane solver's
  cost is superlinear in component size (every feasibility probe is a
  max-flow over the whole instance), so K small solves beat one coupled
  solve even on a single core — fan-out stacks on top where cores exist.
* ``service`` — churn confined to one component, through
  :class:`IncrementalAmfSolver` with ``sharded=True`` vs the monolithic
  solver: the sharded arm re-solves only the touched component and replays
  the other K-1 matrices from the per-shard fingerprint cache.

``--baseline BENCH_PR5.json`` turns the run into a regression gate on the
*dimensionless* sharded/monolithic ratio of the decomposition stage
(machine-speed independent): the process exits non-zero if the ratio
regressed by more than ``--max-regression``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.amf import solve_amf  # noqa: E402
from repro.core.sharding import decompose, solve_amf_sharded  # noqa: E402
from repro.model.cluster import Cluster  # noqa: E402
from repro.model.job import Job  # noqa: E402
from repro.model.site import Site  # noqa: E402
from repro.service.solver import IncrementalAmfSolver  # noqa: E402
from repro.service.state import ClusterState, JobArrived, JobDeparted  # noqa: E402
from repro.workload.generator import WorkloadSpec, generate_cluster  # noqa: E402


def _scaled(n: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(n * scale)))


def block_diagonal(
    k: int, jobs_per_block: int, sites_per_block: int, rng: np.random.Generator
) -> Cluster:
    """K independent generated components glued into one cluster (site and
    job names prefixed per block, so the components stay disconnected)."""
    sites: list[Site] = []
    jobs: list[Job] = []
    for b in range(k):
        sub = generate_cluster(
            WorkloadSpec(n_jobs=jobs_per_block, n_sites=sites_per_block, theta=1.2), rng
        )
        rename = {s.name: f"b{b}.{s.name}" for s in sub.sites}
        sites.extend(Site(rename[s.name], s.capacity) for s in sub.sites)
        jobs.extend(
            Job(
                f"b{b}.{job.name}",
                {rename[s]: w for s, w in job.workload.items()},
                {rename[s]: d for s, d in job.demand.items()},
                weight=job.weight,
            )
            for job in sub.jobs
        )
    return Cluster(tuple(sites), tuple(jobs))


def stage_decomposition(scale: float, repeats: int, workers: int) -> dict:
    """Monolithic vs sharded-serial vs sharded-fanned on one K-block cluster."""
    k = 8
    cluster = block_diagonal(
        k, _scaled(25, scale, 3), _scaled(4, scale, 2), np.random.default_rng(0)
    )
    assert len(decompose(cluster)) == k

    timings: dict[str, list[float]] = {"monolithic": [], "sharded_serial": [], "sharded_workers": []}
    allocs = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        allocs["monolithic"] = solve_amf(cluster)
        timings["monolithic"].append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        allocs["sharded_serial"] = solve_amf_sharded(cluster, workers=None)
        timings["sharded_serial"].append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        allocs["sharded_workers"] = solve_amf_sharded(cluster, workers=workers)
        timings["sharded_workers"].append(time.perf_counter() - t0)
    ref = allocs["monolithic"].aggregates
    for arm in ("sharded_serial", "sharded_workers"):
        np.testing.assert_allclose(allocs[arm].aggregates, ref, atol=1e-7, rtol=1e-7)
    np.testing.assert_array_equal(
        allocs["sharded_serial"].matrix, allocs["sharded_workers"].matrix
    )

    ms = {arm: 1e3 * min(ts) for arm, ts in timings.items()}
    return {
        "blocks": k,
        "n_jobs": cluster.n_jobs,
        "n_sites": cluster.n_sites,
        "workers": workers,
        "monolithic_ms": ms["monolithic"],
        "sharded_serial_ms": ms["sharded_serial"],
        "sharded_workers_ms": ms["sharded_workers"],
        "speedup_serial": ms["monolithic"] / ms["sharded_serial"],
        "speedup_workers": ms["monolithic"] / ms["sharded_workers"],
        "ratio": ms["sharded_workers"] / ms["monolithic"],  # regression-gate metric
    }


def stage_breakpoint_axis(scale: float, repeats: int) -> dict:
    """Decomposition gain as a function of leximin breakpoint *count*.

    :func:`repro.workload.generator.breakpoint_ladder` rungs use disjoint
    site sets, so the ladder is natively shardable: a ``k``-level instance
    splits into independent components the sharded solver handles with tiny
    per-component probes while the monolithic arm pays a whole-instance
    max-flow per level.  Aggregates are asserted equal, serially sharded so
    the number is fan-out-free.
    """
    from repro.workload.generator import breakpoint_ladder

    ks = [k for k in (16, 64) if k <= max(16, int(round(64 * scale)))]
    rows = []
    for k in ks:
        cluster = breakpoint_ladder(k)
        timings: dict[str, list[float]] = {"monolithic": [], "sharded": []}
        allocs = {}
        for _ in range(repeats):
            t0 = time.perf_counter()
            allocs["monolithic"] = solve_amf(cluster)
            timings["monolithic"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            allocs["sharded"] = solve_amf_sharded(cluster, workers=None)
            timings["sharded"].append(time.perf_counter() - t0)
        np.testing.assert_allclose(
            allocs["sharded"].aggregates, allocs["monolithic"].aggregates, atol=1e-7, rtol=1e-7
        )
        mono_ms = 1e3 * min(timings["monolithic"])
        shard_ms = 1e3 * min(timings["sharded"])
        rows.append(
            {
                "breakpoints": k,
                "shards": len(decompose(cluster)),
                "monolithic_ms": mono_ms,
                "sharded_ms": shard_ms,
                "speedup": mono_ms / shard_ms,
            }
        )
    total_mono = sum(r["monolithic_ms"] for r in rows)
    total_shard = sum(r["sharded_ms"] for r in rows)
    return {
        "rows": rows,
        "monolithic_ms": total_mono,
        "sharded_ms": total_shard,
        "speedup": total_mono / total_shard,
    }


def stage_service(scale: float, workers: int) -> dict:
    """Churn confined to one block: per-shard caching vs monolithic re-solves."""
    k = 8
    rng = np.random.default_rng(1)
    cluster = block_diagonal(k, _scaled(20, scale, 3), _scaled(4, scale, 2), rng)
    churn_sites = sorted(decompose(cluster)[0].key)
    n_events = _scaled(40, scale, 8)

    out: dict = {}
    for arm, sharded in (("monolithic", False), ("sharded", True)):
        state = ClusterState(cluster.sites, cluster.jobs)
        solver = IncrementalAmfSolver(sharded=sharded, workers=workers if sharded else None)
        solver(state.snapshot())  # warm both arms with the full first solve
        samples = []
        for step in range(n_events):
            # arrive/depart alternately, always inside block 0
            if step % 2 == 0:
                site = churn_sites[step % len(churn_sites)]
                event = JobArrived(Job(f"churn{step}", {site: float(rng.uniform(0.2, 1.5))}))
            else:
                event = JobDeparted(f"churn{step - 1}")
            applied, _ = state.apply_all([event])
            if not applied:
                continue
            t0 = time.perf_counter()
            alloc = solver(state.snapshot())
            samples.append(time.perf_counter() - t0)
        out[arm] = {
            "solves": len(samples),
            "p50_ms": 1e3 * statistics.median(samples),
            "mean_ms": 1e3 * statistics.fmean(samples),
            "shard_cache_hits": solver.stats.shard_cache_hits,
            "shard_cache_misses": solver.stats.shard_cache_misses,
        }
        out[arm]["final_aggregates"] = [float(a) for a in np.sort(alloc.aggregates)]
    np.testing.assert_allclose(
        out["sharded"]["final_aggregates"], out["monolithic"]["final_aggregates"], atol=1e-7, rtol=1e-7
    )
    for arm in ("monolithic", "sharded"):
        del out[arm]["final_aggregates"]
    out["p50_speedup"] = out["monolithic"]["p50_ms"] / out["sharded"]["p50_ms"]
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=1.0, help="instance size scale")
    ap.add_argument("--repeats", type=int, default=3, help="timed repeats (min is reported)")
    ap.add_argument("--workers", type=int, default=4, help="fork fan-out for the fanned arm")
    ap.add_argument("--out", default="BENCH_PR5.json", help="output JSON path")
    ap.add_argument("--baseline", help="committed BENCH_PR5.json to gate against")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=1.5,
        help="fail if the sharded/monolithic ratio exceeds baseline by this factor",
    )
    args = ap.parse_args(argv)

    result = {
        "scale": args.scale,
        "repeats": args.repeats,
        "stages": {
            "decomposition": stage_decomposition(args.scale, args.repeats, args.workers),
            "breakpoint_axis": stage_breakpoint_axis(args.scale, args.repeats),
            "service": stage_service(args.scale, args.workers),
        },
    }
    result["summary"] = {
        "decomposition_speedup_serial": result["stages"]["decomposition"]["speedup_serial"],
        "decomposition_speedup_workers": result["stages"]["decomposition"]["speedup_workers"],
        "breakpoint_axis_speedup": result["stages"]["breakpoint_axis"]["speedup"],
        "service_p50_speedup": result["stages"]["service"]["p50_speedup"],
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for stage, speedup in result["summary"].items():
        print(f"  {stage}: {speedup:.2f}x")

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        base_ratio = baseline["stages"]["decomposition"]["ratio"]
        fresh_ratio = result["stages"]["decomposition"]["ratio"]
        limit = args.max_regression * base_ratio
        print(
            f"regression gate: sharded/monolithic ratio {fresh_ratio:.3f} "
            f"vs baseline {base_ratio:.3f} (limit {limit:.3f})"
        )
        if fresh_ratio > limit:
            print("FAIL: decomposition ratio regressed beyond the gate", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
