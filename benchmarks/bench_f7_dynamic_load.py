"""F7 — Dynamic open-system simulation: mean JCT and slowdown vs offered load."""

from repro.analysis.experiments import run_f7_dynamic_load


def test_f7_dynamic_load(run_once):
    out = run_once(
        run_f7_dynamic_load,
        scale=0.25,
        seeds=(0,),
        loads=(0.4, 0.7, 0.9),
        policies=("psmf", "amf"),
    )
    sw = out.data["sweep"]
    # queueing sanity: JCT grows with load for both policies
    for p in ("psmf", "amf"):
        assert sw.metric_at(f"{p}/mean_jct", 0.9) >= sw.metric_at(f"{p}/mean_jct", 0.4) * 0.8
